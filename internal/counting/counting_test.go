package counting

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/workload"
)

func TestCountBasic(t *testing.T) {
	q := query.MustParse("R(x | '1')")
	d, err := db.ParseFacts(nil, `
		R(a | 1)
		R(a | 2)
		R(b | 1)
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SatisfyingRepairs(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("total = %v", res.Total)
	}
	// Both repairs contain R(b|1): all satisfy.
	if res.Satisfying.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("satisfying = %v", res.Satisfying)
	}
	if res.Fraction() != 1 {
		t.Errorf("fraction = %v", res.Fraction())
	}
}

// TestCountAgainstNaive: exact counts match exhaustive enumeration.
func TestCountAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 300; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, p)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<12 {
			continue
		}
		sat, total, err := naive.CountSatisfyingRepairs(q, d)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SatisfyingRepairs(q, d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total.Cmp(big.NewInt(int64(total))) != 0 {
			t.Fatalf("total %v vs naive %d\nq=%s\ndb:\n%s", res.Total, total, q, d)
		}
		if res.Satisfying.Cmp(big.NewInt(int64(sat))) != 0 {
			t.Fatalf("sat %v vs naive %d\nq=%s\ndb:\n%s", res.Satisfying, sat, q, d)
		}
	}
}

// TestCountFactorization: many independent components blow past naive
// enumeration but factorize exactly. 30 disjoint gadgets, each with 2
// blocks of 2 facts (one satisfying combination of 4): per-gadget
// falsifier count is 3, so satisfying = 4^30 - 3^30.
func TestCountFactorization(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | x)")
	d := db.New()
	rRel := q.Atoms[0].Rel
	sRel := q.Atoms[1].Rel
	n := 30
	for i := 0; i < n; i++ {
		x := query.Const(fmt.Sprintf("x%d", i))
		y := query.Const(fmt.Sprintf("y%d", i))
		yd := query.Const(fmt.Sprintf("ydead%d", i))
		xd := query.Const(fmt.Sprintf("xdead%d", i))
		d.Add(db.Fact{Rel: rRel, Args: []query.Const{x, y}})
		d.Add(db.Fact{Rel: rRel, Args: []query.Const{x, yd}})
		d.Add(db.Fact{Rel: sRel, Args: []query.Const{y, x}})
		d.Add(db.Fact{Rel: sRel, Args: []query.Const{y, xd}})
	}
	res, err := SatisfyingRepairs(q, d)
	if err != nil {
		t.Fatal(err)
	}
	four := big.NewInt(4)
	three := big.NewInt(3)
	wantTotal := new(big.Int).Exp(four, big.NewInt(int64(n)), nil)
	wantFalsify := new(big.Int).Exp(three, big.NewInt(int64(n)), nil)
	wantSat := new(big.Int).Sub(wantTotal, wantFalsify)
	if res.Total.Cmp(wantTotal) != 0 {
		t.Errorf("total = %v, want %v", res.Total, wantTotal)
	}
	if res.Satisfying.Cmp(wantSat) != 0 {
		t.Errorf("satisfying = %v, want %v", res.Satisfying, wantSat)
	}
	if res.Components != n {
		t.Errorf("components = %d, want %d", res.Components, n)
	}
}

// TestCountConsistentWithDecision: sat == total iff certain; sat > 0 iff
// possible.
func TestCountConsistentWithDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	for trial := 0; trial < 200; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, p)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		res, err := SatisfyingRepairs(q, d)
		if err != nil {
			continue
		}
		certain, errC := core.Certain(q, d, core.Options{Engine: core.EngineCoNP})
		if errC != nil {
			t.Fatal(errC)
		}
		if certain.Certain != (res.Satisfying.Cmp(res.Total) == 0) {
			t.Fatalf("certain=%v but sat=%v/%v\nq=%s\ndb:\n%s",
				certain.Certain, res.Satisfying, res.Total, q, d)
		}
		if core.Possible(q, d) != (res.Satisfying.Sign() > 0) {
			t.Fatalf("possible mismatch: sat=%v\nq=%s\ndb:\n%s", res.Satisfying, q, d)
		}
	}
}

func TestCountRefusesHugeComponent(t *testing.T) {
	q := query.MustParse("R(x | y), S(u | y)")
	d := db.New()
	rRel := q.Atoms[0].Rel
	sRel := q.Atoms[1].Rel
	// One giant component: every R joins every S through shared y pool.
	for i := 0; i < 40; i++ {
		for v := 0; v < 3; v++ {
			d.Add(db.Fact{Rel: rRel, Args: []query.Const{
				query.Const(fmt.Sprintf("x%d", i)), query.Const(fmt.Sprintf("y%d", v))}})
			d.Add(db.Fact{Rel: sRel, Args: []query.Const{
				query.Const(fmt.Sprintf("u%d", i)), query.Const(fmt.Sprintf("y%d", v))}})
		}
	}
	if _, err := SatisfyingRepairs(q, d); err == nil {
		t.Error("a 3^80 component should exceed the bound")
	}
}

func TestEmptyQueryCount(t *testing.T) {
	d, _ := db.ParseFacts(nil, "R(a | 1)\nR(a | 2)")
	res, err := SatisfyingRepairs(query.MustParse(""), d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfying.Cmp(res.Total) != 0 || res.Total.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("empty query: %v/%v", res.Satisfying, res.Total)
	}
}
