package counting

import (
	"errors"
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/workload"
)

func TestCountBasic(t *testing.T) {
	q := query.MustParse("R(x | '1')")
	d, err := db.ParseFacts(nil, `
		R(a | 1)
		R(a | 2)
		R(b | 1)
	`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SatisfyingRepairs(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("total = %v", res.Total)
	}
	// Both repairs contain R(b|1): all satisfy.
	if res.Satisfying.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("satisfying = %v", res.Satisfying)
	}
	if res.Fraction != 1 {
		t.Errorf("fraction = %v", res.Fraction)
	}
	if !res.Exact || res.Confidence != 0 {
		t.Errorf("exact count reported exact=%v confidence=%v", res.Exact, res.Confidence)
	}
}

// TestCountAgainstNaive: exact counts match exhaustive enumeration.
func TestCountAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for trial := 0; trial < 300; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, p)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<12 {
			continue
		}
		sat, total, err := naive.CountSatisfyingRepairs(q, d)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SatisfyingRepairs(q, d)
		if err != nil {
			t.Fatal(err)
		}
		if res.Total.Cmp(big.NewInt(int64(total))) != 0 {
			t.Fatalf("total %v vs naive %d\nq=%s\ndb:\n%s", res.Total, total, q, d)
		}
		if res.Satisfying.Cmp(big.NewInt(int64(sat))) != 0 {
			t.Fatalf("sat %v vs naive %d\nq=%s\ndb:\n%s", res.Satisfying, sat, q, d)
		}
	}
}

// TestCountFactorization: many independent components blow past naive
// enumeration but factorize exactly. 30 disjoint gadgets, each with 2
// blocks of 2 facts (one satisfying combination of 4): per-gadget
// falsifier count is 3, so satisfying = 4^30 - 3^30.
func TestCountFactorization(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | x)")
	d := db.New()
	rRel := q.Atoms[0].Rel
	sRel := q.Atoms[1].Rel
	n := 30
	for i := 0; i < n; i++ {
		x := query.Const(fmt.Sprintf("x%d", i))
		y := query.Const(fmt.Sprintf("y%d", i))
		yd := query.Const(fmt.Sprintf("ydead%d", i))
		xd := query.Const(fmt.Sprintf("xdead%d", i))
		d.Add(db.Fact{Rel: rRel, Args: []query.Const{x, y}})
		d.Add(db.Fact{Rel: rRel, Args: []query.Const{x, yd}})
		d.Add(db.Fact{Rel: sRel, Args: []query.Const{y, x}})
		d.Add(db.Fact{Rel: sRel, Args: []query.Const{y, xd}})
	}
	res, err := SatisfyingRepairs(q, d)
	if err != nil {
		t.Fatal(err)
	}
	four := big.NewInt(4)
	three := big.NewInt(3)
	wantTotal := new(big.Int).Exp(four, big.NewInt(int64(n)), nil)
	wantFalsify := new(big.Int).Exp(three, big.NewInt(int64(n)), nil)
	wantSat := new(big.Int).Sub(wantTotal, wantFalsify)
	if res.Total.Cmp(wantTotal) != 0 {
		t.Errorf("total = %v, want %v", res.Total, wantTotal)
	}
	if res.Satisfying.Cmp(wantSat) != 0 {
		t.Errorf("satisfying = %v, want %v", res.Satisfying, wantSat)
	}
	if res.Components != n {
		t.Errorf("components = %d, want %d", res.Components, n)
	}
}

func TestCountRefusesHugeComponent(t *testing.T) {
	q := query.MustParse("R(x | y), S(u | y)")
	d := db.New()
	rRel := q.Atoms[0].Rel
	sRel := q.Atoms[1].Rel
	// One giant component: every R joins every S through shared y pool.
	for i := 0; i < 40; i++ {
		for v := 0; v < 3; v++ {
			d.Add(db.Fact{Rel: rRel, Args: []query.Const{
				query.Const(fmt.Sprintf("x%d", i)), query.Const(fmt.Sprintf("y%d", v))}})
			d.Add(db.Fact{Rel: sRel, Args: []query.Const{
				query.Const(fmt.Sprintf("u%d", i)), query.Const(fmt.Sprintf("y%d", v))}})
		}
	}
	if _, err := SatisfyingRepairs(q, d); !errors.Is(err, ErrComponentTooLarge) {
		t.Errorf("a 3^80 component should exceed the exact bound, got %v", err)
	}
	// The same instance under the anytime contract: never a refusal.
	res, err := Count(q, match.NewIndex(d), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact || res.Sampled != 1 || res.Satisfying != nil {
		t.Errorf("oversized component: exact=%v sampled=%d sat=%v", res.Exact, res.Sampled, res.Satisfying)
	}
	want := new(big.Int).Exp(big.NewInt(3), big.NewInt(80), nil)
	if res.Total.Cmp(want) != 0 {
		t.Errorf("total = %v, want 3^80", res.Total)
	}
	if res.Fraction < 0 || res.Fraction > 1 || res.Confidence <= 0 {
		t.Errorf("estimate fraction=%v confidence=%v", res.Fraction, res.Confidence)
	}
}

func TestEmptyQueryCount(t *testing.T) {
	d, _ := db.ParseFacts(nil, "R(a | 1)\nR(a | 2)")
	res, err := SatisfyingRepairs(query.MustParse(""), d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfying.Cmp(res.Total) != 0 || res.Total.Cmp(big.NewInt(2)) != 0 {
		t.Errorf("empty query: %v/%v", res.Satisfying, res.Total)
	}
}
