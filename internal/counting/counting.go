// Package counting computes the exact number of repairs that satisfy a
// self-join-free conjunctive query — the quantity behind the counting
// variant #CERTAINTY(q) studied by Maslowski and Wijsen (cited as [12]
// by the reproduced paper). The decision problem reduces to it:
// CERTAINTY(q) holds iff every repair satisfies q.
//
// The counter factorizes the instance: blocks interact only through the
// embeddings of q, so the "constraint graph" (blocks joined by a shared
// embedding) splits into independent components whose falsifying
// assignment counts multiply. Within a component it enumerates
// exhaustively with early pruning; the per-component state space is
// capped, so the counter is exact where it answers and refuses otherwise
// (the problem is #P-hard in general).
package counting

import (
	"fmt"
	"math/big"

	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/query"
)

// Limit caps the number of assignments enumerated per component.
const Limit = 1 << 22

// Result reports the exact counts.
type Result struct {
	Satisfying *big.Int // repairs where q holds
	Total      *big.Int // all repairs
	Components int      // independent constraint components
}

// Fraction returns Satisfying/Total as a float (1 when there are no
// repairs to pick, i.e. Total = 1 and the empty repair satisfies q).
func (r Result) Fraction() float64 {
	if r.Total.Sign() == 0 {
		return 0
	}
	f := new(big.Float).Quo(new(big.Float).SetInt(r.Satisfying), new(big.Float).SetInt(r.Total))
	out, _ := f.Float64()
	return out
}

// SatisfyingRepairs counts the repairs of d satisfying q.
func SatisfyingRepairs(q query.Query, d *db.DB) (Result, error) {
	total := big.NewInt(1)
	for _, b := range d.Blocks() {
		total.Mul(total, big.NewInt(int64(len(b.Facts))))
	}
	res := Result{Total: total}
	if q.Empty() {
		res.Satisfying = new(big.Int).Set(total)
		return res, nil
	}

	// Work on the restriction to q's relations; foreign blocks multiply
	// both counts equally and cancel in the falsifier factorization.
	pd := d.Filter(func(f db.Fact) bool { return q.HasRel(f.Rel.Name) })
	matches := match.AllMatches(q, pd)
	if len(matches) == 0 {
		res.Satisfying = big.NewInt(0)
		return res, nil
	}

	// Index facts and blocks.
	factIdx := map[string]int{}
	var facts []db.Fact
	for _, f := range pd.Facts() {
		factIdx[f.ID()] = len(facts)
		facts = append(facts, f)
	}
	blockIdx := map[string]int{}
	var blocks [][]int
	blockOf := make([]int, len(facts))
	for i, f := range facts {
		bid := f.BlockID()
		b, ok := blockIdx[bid]
		if !ok {
			b = len(blocks)
			blockIdx[bid] = b
			blocks = append(blocks, nil)
		}
		blocks[b] = append(blocks[b], i)
		blockOf[i] = b
	}
	var constraints [][]int
	for _, v := range matches {
		ground, err := db.GroundQuery(q, v)
		if err != nil {
			continue
		}
		if !db.ConsistentSet(ground) {
			continue
		}
		seen := map[int]bool{}
		var c []int
		for _, f := range ground {
			fi := factIdx[f.ID()]
			if !seen[fi] {
				seen[fi] = true
				c = append(c, fi)
			}
		}
		constraints = append(constraints, c)
	}

	// Union blocks sharing a constraint into components.
	parent := make([]int, len(blocks))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	for _, c := range constraints {
		for k := 1; k < len(c); k++ {
			union(blockOf[c[0]], blockOf[c[k]])
		}
	}
	compBlocks := map[int][]int{}
	constrained := make([]bool, len(blocks))
	for _, c := range constraints {
		for _, fi := range c {
			constrained[blockOf[fi]] = true
		}
	}
	for b := range blocks {
		if constrained[b] {
			root := find(b)
			compBlocks[root] = append(compBlocks[root], b)
		}
	}
	compConstraints := map[int][][]int{}
	for _, c := range constraints {
		root := find(blockOf[c[0]])
		compConstraints[root] = append(compConstraints[root], c)
	}

	// Falsifying assignments factorize over components; unconstrained
	// blocks (inside or outside q's relations) contribute full factors
	// to both counts.
	falsifying := big.NewInt(1)
	for root, bs := range compBlocks {
		cnt, err := countComponent(bs, blocks, blockOf, compConstraints[root])
		if err != nil {
			return Result{}, err
		}
		falsifying.Mul(falsifying, big.NewInt(cnt))
		res.Components++
	}
	// Scale by the unconstrained blocks of the FULL database.
	for _, b := range d.Blocks() {
		bi, ok := blockIdx[b.ID]
		if ok && constrained[bi] {
			continue
		}
		falsifying.Mul(falsifying, big.NewInt(int64(len(b.Facts))))
	}
	res.Satisfying = new(big.Int).Sub(total, falsifying)
	return res, nil
}

// countComponent counts the assignments of the component's blocks under
// which every constraint loses at least one fact.
func countComponent(bs []int, blocks [][]int, blockOf []int, constraints [][]int) (int64, error) {
	space := int64(1)
	for _, b := range bs {
		space *= int64(len(blocks[b]))
		if space > Limit {
			return 0, fmt.Errorf("counting: component with %d+ assignments exceeds the bound %d", space, Limit)
		}
	}
	chosen := map[int]bool{}
	var count int64
	var rec func(i int)
	rec = func(i int) {
		if i == len(bs) {
			for _, c := range constraints {
				all := true
				for _, fi := range c {
					if !chosen[fi] {
						all = false
						break
					}
				}
				if all {
					return // this assignment satisfies q via c
				}
			}
			count++
			return
		}
		for _, fi := range blocks[bs[i]] {
			chosen[fi] = true
			rec(i + 1)
			delete(chosen, fi)
		}
	}
	rec(0)
	return count, nil
}
