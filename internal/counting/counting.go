// Package counting computes the number of repairs that satisfy a
// self-join-free conjunctive query — the quantity behind the counting
// variant #CERTAINTY(q) studied by Maslowski and Wijsen (cited as [12]
// by the reproduced paper). The decision problem reduces to it:
// CERTAINTY(q) holds iff every repair satisfies q.
//
// The counter factorizes the instance: blocks interact only through the
// embeddings of q, so the "constraint graph" (blocks joined by a shared
// embedding) splits into independent components whose falsifying
// assignment counts multiply. Within a component it enumerates
// exhaustively with constraint-indexed pruning over slot arrays; the
// per-component state space is capped, and a component that exceeds the
// cap (or the caller's remaining step budget) is estimated by uniform
// Monte Carlo repair sampling instead — the counter is exact where the
// space fits and an anytime estimator with a confidence interval beyond
// it (the problem is #P-hard in general). Exact-only callers set
// Options.Exact and get ErrComponentTooLarge instead of an estimate.
package counting

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"

	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/faultinject"
	"cqa/internal/match"
	"cqa/internal/query"
	"cqa/internal/trace"
)

// DefaultComponentLimit caps the assignments enumerated exactly per
// component when Options.ComponentLimit is unset.
const DefaultComponentLimit = 1 << 22

// DefaultSamples is the Monte Carlo sample count drawn per oversized
// component when Options.Samples is unset. 4096 samples put the 95%
// half-width at ~1.5 points for a central fraction and 3/4096 ≈ 0.07%
// under the rule of three at the extremes.
const DefaultSamples = 4096

// ErrComponentTooLarge reports a constraint component whose exact
// assignment space exceeds the enumeration bound while Options.Exact
// forbids estimation.
var ErrComponentTooLarge = errors.New("counting: component assignment space exceeds the exact enumeration bound")

// Options tunes one Count call.
type Options struct {
	// ComponentLimit caps the assignments enumerated exactly within one
	// constraint component; a component whose space exceeds it (or the
	// checker's remaining step budget) is estimated instead. <= 0 selects
	// DefaultComponentLimit.
	ComponentLimit int64
	// Samples is the Monte Carlo sample count per estimated component.
	// <= 0 selects DefaultSamples.
	Samples int
	// Exact turns an oversized component into an ErrComponentTooLarge
	// error instead of a sampled estimate.
	Exact bool
	// Seed perturbs the deterministic sampling RNG. 0 selects 1, so the
	// default is reproducible run to run.
	Seed int64
}

// Result reports the counts. Total is always exact; Satisfying is exact
// (and non-nil) iff Exact is set, otherwise Fraction carries the anytime
// estimate with Confidence as its 95% half-width.
type Result struct {
	Satisfying *big.Int // repairs where q holds; nil when !Exact
	Total      *big.Int // all repairs (always exact)
	Components int      // independent constraint components
	Sampled    int      // components estimated by Monte Carlo sampling
	Fraction   float64  // Satisfying/Total, exact ratio or estimate midpoint
	Confidence float64  // 95% confidence half-width on Fraction; 0 when Exact
	Exact      bool     // every component enumerated exactly
}

// SatisfyingRepairs counts the repairs of d satisfying q exactly,
// refusing oversized components — the historical entry point, with no
// budget and no estimation. Engine callers use Count.
func SatisfyingRepairs(q query.Query, d *db.DB) (Result, error) {
	return Count(q, match.NewIndex(d), nil, Options{Exact: true})
}

// ref addresses one fact as (block ordinal, slot in block) over the
// dense ordinals assigned to constrained blocks.
type ref struct{ b, s int32 }

// Count counts the repairs of ix.DB satisfying q under the checker's
// cancellation and step budget. It polls chk per enumerated embedding
// candidate, per exact assignment slot, and per Monte Carlo sample; a
// nil checker enforces nothing.
func Count(q query.Query, ix *match.Index, chk *evalctx.Checker, opts Options) (Result, error) {
	d := ix.DB
	tr := chk.Tracer()
	sp := tr.Begin(trace.StageCount)
	defer sp.End()
	if err := chk.Check(); err != nil {
		return Result{}, err
	}
	limit := opts.ComponentLimit
	if limit <= 0 {
		limit = DefaultComponentLimit
	}
	samples := opts.Samples
	if samples <= 0 {
		samples = DefaultSamples
	}
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}

	total := big.NewInt(1)
	for _, b := range d.Blocks() {
		total.Mul(total, big.NewInt(int64(len(b.Facts))))
	}
	res := Result{Total: total, Exact: true}
	if q.Empty() {
		res.Satisfying = new(big.Int).Set(total)
		res.Fraction = 1
		return res, nil
	}

	// Enumerate the consistent ground embeddings of q: each one is a
	// constraint — a set of (block, slot) refs whose joint survival in a
	// repair satisfies q. Blocks are given dense ordinals on first touch,
	// so only constrained blocks enter the component machinery; all other
	// blocks contribute equal factors to both counts.
	blockOrd := map[string]int32{}
	var blockFacts [][]db.Fact
	var constraints [][]ref
	bad := false
	ix.MatchChecked(q, query.Valuation{}, chk, func(v query.Valuation) bool {
		ground, err := db.GroundQuery(q, v)
		if err != nil || !db.ConsistentSet(ground) {
			// A grounding that collides inside one block can never
			// survive a repair whole; it constrains nothing.
			return true
		}
		c := make([]ref, 0, len(ground))
		for _, f := range ground {
			blk := d.BlockOf(f)
			bo, ok := blockOrd[blk.ID]
			if !ok {
				bo = int32(len(blockFacts))
				blockOrd[blk.ID] = bo
				blockFacts = append(blockFacts, blk.Facts)
			}
			slot := int32(-1)
			for s, g := range blockFacts[bo] {
				if g.Equal(f) {
					slot = int32(s)
					break
				}
			}
			if slot < 0 {
				bad = true
				return false
			}
			c = append(c, ref{b: bo, s: slot})
		}
		constraints = append(constraints, c)
		return true
	})
	if err := chk.Err(); err != nil {
		return Result{}, err
	}
	if bad {
		return Result{}, errors.New("counting: matched fact missing from its block")
	}
	tr.Add(trace.StageCount, trace.CtrMatches, int64(len(constraints)))

	// Union blocks sharing a constraint into components.
	parent := make([]int32, len(blockFacts))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, c := range constraints {
		r0 := find(c[0].b)
		for _, fr := range c[1:] {
			parent[find(fr.b)] = r0
			r0 = find(r0)
		}
	}
	compOf := make([]int32, len(blockFacts))
	var compBlocks [][]int32
	for b := range blockFacts {
		root := find(int32(b))
		if int(root) == b {
			compOf[b] = int32(len(compBlocks))
			compBlocks = append(compBlocks, nil)
		}
	}
	for b := range blockFacts {
		ci := compOf[find(int32(b))]
		compOf[b] = ci
		compBlocks[ci] = append(compBlocks[ci], int32(b))
	}
	compCons := make([][][]ref, len(compBlocks))
	for _, c := range constraints {
		ci := compOf[c[0].b]
		compCons[ci] = append(compCons[ci], c)
	}

	// Falsifying assignments factorize over components. Exact components
	// contribute a point falsifying ratio; sampled ones an interval, and
	// the product of intervals bounds the overall falsifying fraction.
	falsifying := big.NewInt(1)
	fracLo, fracHi := 1.0, 1.0
	rng := rand.New(rand.NewSource(seed))
	var totalSamples int64
	for ci := range compBlocks {
		if err := faultinject.Fire("counting.component"); err != nil {
			return Result{}, fmt.Errorf("counting: component %d: %w", ci, err)
		}
		if err := chk.Check(); err != nil {
			return Result{}, err
		}
		comp := localizeComponent(compBlocks[ci], blockFacts, compCons[ci])
		res.Components++
		if comp.alwaysSat {
			// Some constraint is fully forced (every block it touches
			// has one fact): all assignments of this component satisfy
			// q, exactly, regardless of the component's size.
			fracLo, fracHi = 0, 0
			falsifying.SetInt64(0)
			continue
		}
		space, fits := componentSpace(comp.sizes, limit)
		if fits {
			if rem, ok := chk.Remaining(); ok && space > rem {
				fits = false
			}
		}
		if fits {
			fals, err := countComponentExact(comp, chk)
			if err != nil {
				return Result{}, err
			}
			tr.Add(trace.StageCount, trace.CtrSteps, space)
			falsifying.Mul(falsifying, big.NewInt(fals))
			r := float64(fals) / float64(space)
			fracLo *= r
			fracHi *= r
			continue
		}
		if opts.Exact {
			return Result{}, fmt.Errorf("%w (component %d, %d blocks over limit %d)",
				ErrComponentTooLarge, ci, len(comp.sizes), limit)
		}
		lo, hi, err := sampleComponent(comp, samples, rng, chk)
		if err != nil {
			return Result{}, err
		}
		totalSamples += int64(samples)
		res.Sampled++
		res.Exact = false
		fracLo *= lo
		fracHi *= hi
	}
	tr.Add(trace.StageCount, trace.CtrComponents, int64(res.Components))
	tr.Add(trace.StageCount, trace.CtrSamples, totalSamples)

	// An exactly-counted component with zero falsifying assignments zeroes
	// the falsifying product outright, so the overall count is exact even
	// when other components had to be sampled: every repair satisfies q.
	// (Sampled still records the estimation effort that turned out moot.)
	if !res.Exact && falsifying.Sign() == 0 {
		res.Exact = true
	}
	if res.Exact {
		// Unconstrained blocks scale the falsifying count to the full
		// database; they multiply Total identically, so the fraction is
		// untouched.
		for _, b := range d.Blocks() {
			if _, ok := blockOrd[b.ID]; ok {
				continue
			}
			falsifying.Mul(falsifying, big.NewInt(int64(len(b.Facts))))
		}
		res.Satisfying = new(big.Int).Sub(total, falsifying)
		res.Fraction = exactFraction(res.Satisfying, total)
		return res, nil
	}
	res.Fraction = 1 - (fracLo+fracHi)/2
	res.Confidence = (fracHi - fracLo) / 2
	return res, nil
}

// component is one constraint component in local form: free blocks (two
// or more facts) indexed densely, forced single-fact blocks dropped, and
// each constraint reduced to refs into the free blocks and attached at
// the deepest free block it mentions for subtree pruning.
type component struct {
	sizes     []int       // fact count per free block
	facts     [][]db.Fact // facts per free block (sampling)
	byDepth   [][][]ref   // constraints attached at their deepest free block
	cons      [][]ref     // all localized constraints (sampling)
	alwaysSat bool        // a constraint became empty: fully forced
}

// localizeComponent remaps a component's constraints from global block
// ordinals to dense free-block indices. Facts in single-fact blocks are
// always chosen in every repair, so their refs vanish; a constraint with
// no refs left is satisfied by every assignment.
func localizeComponent(bs []int32, blockFacts [][]db.Fact, cons [][]ref) *component {
	comp := &component{}
	local := map[int32]int32{}
	for _, b := range bs {
		if len(blockFacts[b]) < 2 {
			continue
		}
		local[b] = int32(len(comp.sizes))
		comp.sizes = append(comp.sizes, len(blockFacts[b]))
		comp.facts = append(comp.facts, blockFacts[b])
	}
	comp.byDepth = make([][][]ref, len(comp.sizes))
	for _, c := range cons {
		lc := make([]ref, 0, len(c))
		depth := int32(-1)
		for _, fr := range c {
			lb, ok := local[fr.b]
			if !ok {
				continue // forced block: the ref always holds
			}
			lc = append(lc, ref{b: lb, s: fr.s})
			if lb > depth {
				depth = lb
			}
		}
		if len(lc) == 0 {
			comp.alwaysSat = true
			return comp
		}
		comp.cons = append(comp.cons, lc)
		comp.byDepth[depth] = append(comp.byDepth[depth], lc)
	}
	return comp
}

// componentSpace computes the product of the block sizes without ever
// overflowing: the pre-multiplication guard space > limit/n rejects any
// product that would exceed limit, so the running value stays <= limit
// and cannot wrap int64 (the historical post-multiplication check could,
// with a pathological block and a caller-raised limit).
func componentSpace(sizes []int, limit int64) (int64, bool) {
	space := int64(1)
	for _, n := range sizes {
		nn := int64(n)
		if nn <= 0 {
			return 0, false
		}
		if space > limit/nn {
			return 0, false
		}
		space *= nn
	}
	return space, true
}

// countComponentExact counts the falsifying assignments — one fact per
// free block such that no constraint keeps all its facts — over slot
// arrays. Constraints prune at the deepest block they mention: once one
// is fully chosen the whole subtree satisfies q and contributes nothing.
func countComponentExact(comp *component, chk *evalctx.Checker) (int64, error) {
	sel := make([]int32, len(comp.sizes))
	var count int64
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(comp.sizes) {
			count++
			return nil
		}
		for s := 0; s < comp.sizes[i]; s++ {
			if err := chk.Step(); err != nil {
				return err
			}
			sel[i] = int32(s)
			satisfied := false
			for _, c := range comp.byDepth[i] {
				all := true
				for _, fr := range c {
					if sel[fr.b] != fr.s {
						all = false
						break
					}
				}
				if all {
					satisfied = true
					break
				}
			}
			if satisfied {
				continue
			}
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return 0, err
	}
	return count, nil
}

// sampleComponent draws n uniform assignments of the component's free
// blocks — each is a uniform repair restricted to the component — and
// returns a 95% confidence interval [lo, hi] on its falsifying fraction:
// a normal approximation in the interior, the rule of three at the
// boundary outcomes where the variance estimate degenerates.
func sampleComponent(comp *component, n int, rng *rand.Rand, chk *evalctx.Checker) (lo, hi float64, err error) {
	sel := make([]int32, len(comp.sizes))
	fals := 0
	for k := 0; k < n; k++ {
		if err := chk.Step(); err != nil {
			return 0, 0, err
		}
		for i, sz := range comp.sizes {
			sel[i] = int32(rng.Intn(sz))
		}
		satisfied := false
		for _, c := range comp.cons {
			all := true
			for _, fr := range c {
				if sel[fr.b] != fr.s {
					all = false
					break
				}
			}
			if all {
				satisfied = true
				break
			}
		}
		if !satisfied {
			fals++
		}
	}
	r := float64(fals) / float64(n)
	var hw float64
	if fals == 0 || fals == n {
		hw = 3 / float64(n)
	} else {
		hw = 1.96 * math.Sqrt(r*(1-r)/float64(n))
	}
	lo = math.Max(0, r-hw)
	hi = math.Min(1, r+hw)
	return lo, hi, nil
}

// exactFraction returns sat/total as a float64 (0 on an empty space,
// which cannot arise from block products but keeps the ratio total).
func exactFraction(sat, total *big.Int) float64 {
	if total.Sign() == 0 {
		return 0
	}
	f := new(big.Float).Quo(new(big.Float).SetInt(sat), new(big.Float).SetInt(total))
	out, _ := f.Float64()
	return out
}
