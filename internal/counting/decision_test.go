package counting_test

import (
	"math/rand"
	"testing"

	"cqa/internal/core"
	"cqa/internal/counting"
	"cqa/internal/workload"
)

// TestCountConsistentWithDecision: sat == total iff certain; sat > 0 iff
// possible.
func TestCountConsistentWithDecision(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	for trial := 0; trial < 200; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, p)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		res, err := counting.SatisfyingRepairs(q, d)
		if err != nil {
			continue
		}
		certain, errC := core.Certain(q, d, core.Options{Engine: core.EngineCoNP})
		if errC != nil {
			t.Fatal(errC)
		}
		if certain.Certain != (res.Satisfying.Cmp(res.Total) == 0) {
			t.Fatalf("certain=%v but sat=%v/%v\nq=%s\ndb:\n%s",
				certain.Certain, res.Satisfying, res.Total, q, d)
		}
		if core.Possible(q, d) != (res.Satisfying.Sign() > 0) {
			t.Fatalf("possible mismatch: sat=%v\nq=%s\ndb:\n%s", res.Satisfying, q, d)
		}
	}
}
