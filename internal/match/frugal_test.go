package match

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/query"
	"cqa/internal/workload"
)

func TestSatisfiedInstantiations(t *testing.T) {
	q := query.MustParse("R(x | y)")
	d := factsDB(t, `
		R(a | 1)
		R(b | 2)
	`)
	sat := SatisfiedInstantiations(q, d, query.NewVarSet("x"))
	if len(sat) != 2 || !sat["x=a"] || !sat["x=b"] {
		t.Errorf("sat = %v", sat)
	}
	// Empty X: any embedding yields the single empty instantiation.
	sat = SatisfiedInstantiations(q, d, query.NewVarSet())
	if len(sat) != 1 || !sat[""] {
		t.Errorf("sat for empty X = %v", sat)
	}
}

func TestPrecedesFrugal(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	r1 := factsDB(t, "R(a | b)\nS(b | c)")
	r2 := factsDB(t, "R(a | dead)\nS(b | c)")
	x := query.NewVarSet("x")
	if !PrecedesFrugal(q, x, r2, r1) {
		t.Error("r2 satisfies nothing; it precedes everything")
	}
	if PrecedesFrugal(q, x, r1, r2) {
		t.Error("r1 satisfies x=a which r2 does not")
	}
}

func TestFrugalRepairsSimple(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := factsDB(t, `
		R(a | b)
		R(a | dead)
		S(b | c)
	`)
	frugal, err := FrugalRepairs(q, query.NewVarSet("x"), d)
	if err != nil {
		t.Fatal(err)
	}
	// The repair choosing R(a|dead) satisfies no instantiation: it is the
	// unique frugal repair.
	if len(frugal) != 1 {
		t.Fatalf("%d frugal repairs", len(frugal))
	}
	found := false
	for _, f := range frugal[0] {
		if f.String() == "R(a | dead)" {
			found = true
		}
	}
	if !found {
		t.Errorf("frugal repair should pick R(a | dead): %s", FormatRepair(frugal[0]))
	}
}

// TestLemma2 validates Lemma 2 on random instances: every repair
// satisfies q iff every X-frugal repair satisfies q, for random X.
func TestLemma2(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	checked := 0
	for trial := 0; trial < 200 && checked < 120; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, p)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		if d.NumRepairs() > 1<<10 {
			continue
		}
		// Random X ⊆ vars(q).
		x := query.NewVarSet()
		for _, v := range q.Vars().Sorted() {
			if rng.Intn(2) == 0 {
				x.Add(v)
			}
		}
		allSat := true
		d.Repairs(func(facts []db.Fact) bool {
			if !Satisfies(q, db.FromFacts(facts...)) {
				allSat = false
				return false
			}
			return true
		})
		frugal, err := FrugalRepairs(q, x, d)
		if err != nil {
			t.Fatal(err)
		}
		frugalSat := true
		for _, facts := range frugal {
			if !Satisfies(q, db.FromFacts(facts...)) {
				frugalSat = false
				break
			}
		}
		if allSat != frugalSat {
			t.Fatalf("Lemma 2 violated: all=%v frugal=%v\nq=%s X=%s\ndb:\n%s",
				allSat, frugalSat, q, x, d)
		}
		checked++
	}
	if checked < 50 {
		t.Fatalf("only %d instances checked", checked)
	}
}

func TestFrugalRepairsBound(t *testing.T) {
	q := query.MustParse("R(x | y)")
	d := db.New()
	rel := q.Atoms[0].Rel
	for i := 0; i < 20; i++ {
		key := query.Const(string(rune('a' + i)))
		d.Add(db.Fact{Rel: rel, Args: []query.Const{key, "1"}})
		d.Add(db.Fact{Rel: rel, Args: []query.Const{key, "2"}})
	}
	if _, err := FrugalRepairs(q, query.NewVarSet("x"), d); err == nil {
		t.Error("2^20 repairs should exceed the bound")
	}
}
