// Package match evaluates conjunctive queries over uncertain databases:
// it enumerates valuations theta with theta(q) ⊆ db via a backtracking
// join, decides relevance of facts (Section 3 of Koutris & Wijsen, PODS
// 2015), and implements purification (Lemma 1) and gpurification
// (Definition 7 / Lemma 17).
package match

import (
	"cqa/internal/db"
	"cqa/internal/evalctx"
	"cqa/internal/query"
	"cqa/internal/trace"
)

// Index wraps a database with the lookup structures the join needs:
// facts by relation and blocks by (relation, key value). Since the
// database memoizes those structures itself, an Index is now a zero-cost
// view — NewIndex does no per-relation copying — and one database shared
// by many goroutines needs no per-caller index construction.
type Index struct {
	DB *db.DB
}

// NewIndex builds an index over the database. It is O(1): the lookup
// structures live in the database and are built once on first use.
func NewIndex(d *db.DB) *Index {
	return &Index{DB: d}
}

// candidates returns the facts that could match the atom under the current
// valuation: the block (one hash probe) when the key is fully bound,
// otherwise all facts of the relation. The key buffer lives on the
// stack for ordinary key widths — the probe itself does not retain it —
// so the join's per-atom probes stay allocation-free.
func (ix *Index) candidates(a query.Atom, val query.Valuation) []db.Fact {
	keyBound := true
	var buf [8]query.Const
	var keyArgs []query.Const
	if a.Rel.KeyLen <= len(buf) {
		keyArgs = buf[:a.Rel.KeyLen]
	} else {
		keyArgs = make([]query.Const, a.Rel.KeyLen)
	}
	for i, t := range a.KeyArgs() {
		c, ok := val.Apply(t)
		if !ok {
			keyBound = false
			break
		}
		keyArgs[i] = c
	}
	if keyBound {
		b, _ := ix.DB.BlockByKey(a.Rel.Name, keyArgs)
		return b.Facts
	}
	return ix.DB.FactsOf(a.Rel.Name)
}

// unify attempts to extend val so that the atom maps onto the fact.
// It returns the list of variables newly bound (for undo) and whether the
// unification succeeded; on failure val is left unchanged.
func unify(a query.Atom, f db.Fact, val query.Valuation) ([]query.Var, bool) {
	var added []query.Var
	undo := func() {
		for _, v := range added {
			delete(val, v)
		}
	}
	for i, t := range a.Args {
		c := f.Args[i]
		if t.IsConst() {
			if t.Const() != c {
				undo()
				return nil, false
			}
			continue
		}
		v := t.Var()
		if bound, ok := val[v]; ok {
			if bound != c {
				undo()
				return nil, false
			}
			continue
		}
		val[v] = c
		added = append(added, v)
	}
	return added, true
}

// UnifyTerms extends val so that the terms map onto the constants,
// reporting failure on constant mismatches or inconsistent repeated
// variables. Bindings made before a failure are kept; clone val first when
// that matters.
func UnifyTerms(terms []query.Term, consts []query.Const, val query.Valuation) bool {
	for i, t := range terms {
		c := consts[i]
		if t.IsConst() {
			if t.Const() != c {
				return false
			}
			continue
		}
		v := t.Var()
		if bound, ok := val[v]; ok {
			if bound != c {
				return false
			}
			continue
		}
		val[v] = c
	}
	return true
}

// boundCount counts how many of the atom's variables are bound by val;
// constants count as bound positions.
func boundCount(a query.Atom, val query.Valuation) (bound int, keyFullyBound bool) {
	keyFullyBound = true
	for i, t := range a.Args {
		if t.IsConst() {
			bound++
			continue
		}
		if _, ok := val[t.Var()]; ok {
			bound++
		} else if i < a.Rel.KeyLen {
			keyFullyBound = false
		}
	}
	return bound, keyFullyBound
}

// Match enumerates every valuation theta over vars(q) extending partial
// with theta(q) ⊆ db, calling yield for each. Enumeration stops when yield
// returns false; Match returns false in that case. The valuation passed to
// yield is reused across calls: clone it to retain it.
func (ix *Index) Match(q query.Query, partial query.Valuation, yield func(query.Valuation) bool) bool {
	return ix.MatchChecked(q, partial, nil, yield)
}

// MatchChecked is Match under a cancellation/budget checker, polled once
// per candidate fact of the backtracking join — not just per yielded
// match, which would leave a join that explores many failing branches
// (or finds no match at all) running unpolled for its entire duration.
// On a tripped checker the enumeration unwinds and MatchChecked returns
// false; callers distinguish abort from exhaustion via chk.Err(). A nil
// checker enforces nothing.
func (ix *Index) MatchChecked(q query.Query, partial query.Valuation, chk *evalctx.Checker, yield func(query.Valuation) bool) bool {
	val := partial.Clone()
	used := make([]bool, q.Len())
	return ix.matchRec(q, used, val, chk, yield)
}

func (ix *Index) matchRec(q query.Query, used []bool, val query.Valuation, chk *evalctx.Checker, yield func(query.Valuation) bool) bool {
	// Find the next atom: prefer fully-bound keys (block lookup), then the
	// atom with the most bound positions.
	next := -1
	bestBound := -1
	bestKey := false
	remaining := 0
	for i, a := range q.Atoms {
		if used[i] {
			continue
		}
		remaining++
		b, kb := boundCount(a, val)
		if kb && !bestKey {
			next, bestBound, bestKey = i, b, true
		} else if kb == bestKey && b > bestBound {
			next, bestBound = i, b
		}
	}
	if remaining == 0 {
		return yield(val)
	}
	a := q.Atoms[next]
	used[next] = true
	defer func() { used[next] = false }()
	for _, f := range ix.candidates(a, val) {
		if chk.Step() != nil {
			return false
		}
		added, ok := unify(a, f, val)
		if !ok {
			continue
		}
		cont := ix.matchRec(q, used, val, chk, yield)
		for _, v := range added {
			delete(val, v)
		}
		if !cont {
			return false
		}
	}
	return true
}

// Exists reports whether some valuation extending partial embeds q in db.
func (ix *Index) Exists(q query.Query, partial query.Valuation) bool {
	found := false
	ix.Match(q, partial, func(query.Valuation) bool {
		found = true
		return false
	})
	return found
}

// All returns every match of q in db (cloned valuations, deterministic
// order of discovery).
func (ix *Index) All(q query.Query) []query.Valuation {
	var out []query.Valuation
	ix.Match(q, query.Valuation{}, func(v query.Valuation) bool {
		out = append(out, v.Clone())
		return true
	})
	return out
}

// MatchesWith enumerates the matches theta with fact ∈ theta(q): the fact
// is unified with the (unique, by self-join-freeness) atom of its relation
// first. When q has no atom with the fact's relation there are no such
// matches.
func (ix *Index) MatchesWith(q query.Query, f db.Fact, yield func(query.Valuation) bool) bool {
	atom, ok := q.AtomWithRel(f.Rel.Name)
	if !ok {
		return true
	}
	val := query.Valuation{}
	if _, ok := unify(atom, f, val); !ok {
		return true
	}
	rest := q.Remove(atom)
	return ix.Match(rest, val, yield)
}

// Relevant reports whether the fact is relevant for q in db: some
// valuation theta has fact ∈ theta(q) ⊆ db.
func (ix *Index) Relevant(q query.Query, f db.Fact) bool {
	found := false
	ix.MatchesWith(q, f, func(query.Valuation) bool {
		found = true
		return false
	})
	return found
}

// Satisfies reports whether db |= q.
func Satisfies(q query.Query, d *db.DB) bool {
	return NewIndex(d).Exists(q, query.Valuation{})
}

// AllMatches returns every match of q in d.
func AllMatches(q query.Query, d *db.DB) []query.Valuation {
	return NewIndex(d).All(q)
}

// AllMatchesChecked is AllMatches under a cancellation/budget checker,
// polled once per enumerated match. A nil checker enforces nothing.
func AllMatchesChecked(q query.Query, d *db.DB, chk *evalctx.Checker) ([]query.Valuation, error) {
	sp := chk.Tracer().Begin(trace.StageMatch)
	var out []query.Valuation
	NewIndex(d).MatchChecked(q, query.Valuation{}, chk, func(v query.Valuation) bool {
		out = append(out, v.Clone())
		return true
	})
	sp.End()
	chk.Tracer().Add(trace.StageMatch, trace.CtrMatches, int64(len(out)))
	if err := chk.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// RelevantFact reports whether f is relevant for q in d.
func RelevantFact(q query.Query, d *db.DB, f db.Fact) bool {
	ix := NewIndex(d)
	found := false
	ix.MatchesWith(q, f, func(query.Valuation) bool {
		found = true
		return false
	})
	return found
}

// Purify implements Lemma 1: it computes a database that is purified
// relative to q (every fact is relevant) and has the same certain answer.
//
// The key subtlety: an irrelevant fact cannot simply be dropped, because a
// repair may choose it and thereby contribute nothing towards satisfying
// q. Instead, a block containing an irrelevant fact is removed entirely —
// if some repair of the remainder falsifies q, extending it with the
// irrelevant fact yields a falsifying repair of the original database, and
// conversely every repair of the original extends a repair of the
// remainder. Removals can make further facts irrelevant, so the procedure
// iterates to a fixpoint; each round deletes at least one block, so it
// terminates after polynomially many rounds.
//
// Facts of relations not occurring in q are never relevant and are
// removed up front (their blocks never interact with q).
func Purify(q query.Query, d *db.DB) *db.DB {
	pd, _ := PurifyTrace(q, d)
	return pd
}

// Removal records one purification step: the block identified by BlockID
// was removed because Witness was irrelevant at the time of removal.
type Removal struct {
	BlockID string
	Witness db.Fact
}

// PurifyTrace is Purify but additionally returns the removals in
// chronological order. The trace lets callers turn a falsifying repair of
// the purified database into a falsifying repair of the original one:
// walk the removals in reverse order, adding each witness fact (it was
// irrelevant when removed, so it cannot complete an embedding against the
// facts that remained).
func PurifyTrace(q query.Query, d *db.DB) (*db.DB, []Removal) {
	pd, removals, _ := PurifyTraceChecked(q, d, nil)
	return pd, removals
}

// PurifyTraceChecked is PurifyTrace under a cancellation/budget checker.
// Purification is polynomial but not cheap — each fixpoint round
// re-enumerates every embedding — so on large instances it can dominate
// the latency of a cut-short evaluation; the rounds poll the checker
// per embedding and per scanned fact. A nil checker enforces nothing.
func PurifyTraceChecked(q query.Query, d *db.DB, chk *evalctx.Checker) (*db.DB, []Removal, error) {
	tr := chk.Tracer()
	sp := tr.Begin(trace.StagePurify)
	defer sp.End()
	var removals []Removal
	cur := d.Filter(func(f db.Fact) bool {
		if q.HasRel(f.Rel.Name) {
			return true
		}
		return false
	})
	// Blocks of relations outside q never join with anything; record them
	// first with an arbitrary witness.
	seen := make(map[string]bool)
	for _, f := range d.Facts() {
		if !q.HasRel(f.Rel.Name) && !seen[f.BlockID()] {
			seen[f.BlockID()] = true
			removals = append(removals, Removal{BlockID: f.BlockID(), Witness: f})
		}
	}
	for {
		tr.Add(trace.StagePurify, trace.CtrRounds, 1)
		if err := chk.Check(); err != nil {
			return nil, nil, err
		}
		// One embedding enumeration marks every relevant fact; anything
		// unmarked is irrelevant and dooms its whole block.
		ix := NewIndex(cur)
		relevant := make(map[string]bool, cur.Len())
		ix.MatchChecked(q, query.Valuation{}, chk, func(v query.Valuation) bool {
			for _, a := range q.Atoms {
				if f, err := db.FactFromAtom(a, v); err == nil {
					relevant[f.ID()] = true
				}
			}
			return true
		})
		dropBlocks := make(map[string]bool)
		for _, f := range cur.Facts() {
			if chk.Step() != nil {
				break
			}
			if dropBlocks[f.BlockID()] {
				continue
			}
			if !relevant[f.ID()] {
				dropBlocks[f.BlockID()] = true
				removals = append(removals, Removal{BlockID: f.BlockID(), Witness: f})
			}
		}
		if err := chk.Err(); err != nil {
			return nil, nil, err
		}
		if len(dropBlocks) == 0 {
			tr.Add(trace.StagePurify, trace.CtrFacts, int64(len(removals)))
			return cur, removals, nil
		}
		cur = cur.Filter(func(f db.Fact) bool { return !dropBlocks[f.BlockID()] })
	}
}
