package match

import (
	"sort"

	"cqa/internal/db"
	"cqa/internal/query"
	"cqa/internal/schema"
)

// GBlock is a generalized block (Definition 7): a maximal set of mode-i
// facts that agree on their primary-key position. All mode-i facts must be
// simple-key for gblocks to be well defined. Facts in a gblock share the
// key constant but may have distinct relation names.
type GBlock struct {
	Key    query.Const
	Blocks []db.Block // one block per relation present, stable order
}

// Size returns the number of facts in the gblock.
func (g GBlock) Size() int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Facts)
	}
	return n
}

// NumRepairs returns the number of repairs of the gblock: the product of
// its block sizes.
func (g GBlock) NumRepairs() int {
	n := 1
	for _, b := range g.Blocks {
		n *= len(b.Facts)
	}
	return n
}

// Repairs enumerates the repairs of the gblock (one fact per block),
// stopping early when yield returns false. The slice passed to yield is
// reused; copy to retain.
func (g GBlock) Repairs(yield func([]db.Fact) bool) {
	repair := make([]db.Fact, len(g.Blocks))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(g.Blocks) {
			return yield(repair)
		}
		for _, f := range g.Blocks[i].Facts {
			repair[i] = f
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}

// GBlocks groups the simple-key mode-i facts of d by their key constant.
// Gblocks are defined (Definition 7) in the regime where every mode-i atom
// is simple-key; facts of composite-key mode-i relations are skipped, so
// in that regime the result covers all mode-i facts.
func GBlocks(d *db.DB) ([]GBlock, error) {
	byKey := make(map[query.Const][]db.Block)
	var order []query.Const
	for _, name := range d.Relations() {
		for _, b := range d.BlocksOf(name) {
			if len(b.Facts) == 0 {
				continue
			}
			rel := b.Facts[0].Rel
			if rel.Mode == schema.ModeC {
				continue
			}
			if !rel.SimpleKey() {
				continue
			}
			k := b.Facts[0].Args[0]
			if _, ok := byKey[k]; !ok {
				order = append(order, k)
			}
			byKey[k] = append(byKey[k], b)
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	out := make([]GBlock, 0, len(order))
	for _, k := range order {
		out = append(out, GBlock{Key: k, Blocks: byKey[k]})
	}
	return out, nil
}

// GRelevant reports whether the consistent fact set s is grelevant for q
// in d (Definition 6): s extends to a repair r of d in which some fact of
// s is relevant. Equivalently, some match theta of q in d has
// theta(q) ∩ s ≠ ∅ and theta(q) ∪ s consistent.
func GRelevant(q query.Query, d *db.DB, s []db.Fact) bool {
	ix := NewIndex(d)
	return gRelevant(q, ix, s)
}

func gRelevant(q query.Query, ix *Index, s []db.Fact) bool {
	chosen := make(map[string]string, len(s)) // block ID -> fact ID
	for _, f := range s {
		chosen[f.BlockID()] = f.ID()
	}
	for _, f := range s {
		found := false
		ix.MatchesWith(q, f, func(v query.Valuation) bool {
			facts, err := db.GroundQuery(q, v)
			if err != nil {
				return true // partial match over a subset query; cannot happen here
			}
			if !db.ConsistentSet(facts) {
				return true
			}
			for _, g := range facts {
				if want, ok := chosen[g.BlockID()]; ok && want != g.ID() {
					return true // clashes with s inside a shared block
				}
			}
			found = true
			return false
		})
		if found {
			return true
		}
	}
	return false
}

// GPurify implements Lemma 17: it repeatedly purifies d and removes every
// gblock that has a non-grelevant repair (justified by Lemma 16: the
// non-grelevant repair witnesses that the gblock's blocks can be dropped
// without changing the certain answer). The result is gpurified relative
// to q: every repair of every gblock is grelevant.
//
// The caller must ensure all mode-i atoms of q and all mode-i facts of d
// are simple-key; d should already be typed relative to q.
func GPurify(q query.Query, d *db.DB) (*db.DB, error) {
	cur := Purify(q, d)
	for {
		gblocks, err := GBlocks(cur)
		if err != nil {
			return nil, err
		}
		ix := NewIndex(cur)
		var removed []db.Fact
		for _, g := range gblocks {
			bad := false
			g.Repairs(func(s []db.Fact) bool {
				if !gRelevant(q, ix, s) {
					bad = true
					return false
				}
				return true
			})
			if bad {
				for _, b := range g.Blocks {
					removed = append(removed, b.Facts...)
				}
			}
		}
		if len(removed) == 0 {
			return cur, nil
		}
		cur = Purify(q, cur.Without(removed))
	}
}
