package match

import (
	"fmt"
	"sort"
	"strings"

	"cqa/internal/db"
	"cqa/internal/query"
)

// SatisfiedInstantiations returns, for a repair r and a variable set X,
// the canonical keys of the valuations theta over X such that
// r |= theta(q) — the data underlying the frugality preorder of the
// paper's Section 3.
func SatisfiedInstantiations(q query.Query, r *db.DB, x query.VarSet) map[string]bool {
	out := make(map[string]bool)
	NewIndex(r).Match(q, query.Valuation{}, func(v query.Valuation) bool {
		out[v.Restrict(x).Key()] = true
		return true
	})
	return out
}

// PrecedesFrugal reports r1 ⪯X_q r2: every X-instantiation of q
// satisfied by r1 is satisfied by r2.
func PrecedesFrugal(q query.Query, x query.VarSet, r1, r2 *db.DB) bool {
	s1 := SatisfiedInstantiations(q, r1, x)
	s2 := SatisfiedInstantiations(q, r2, x)
	for k := range s1 {
		if !s2[k] {
			return false
		}
	}
	return true
}

// FrugalRepairs enumerates the X-frugal repairs of d (the minimal
// elements of the ⪯X_q preorder) by exhaustive enumeration; it is a
// reference implementation for validating Lemma 2 on small databases.
func FrugalRepairs(q query.Query, x query.VarSet, d *db.DB) ([][]db.Fact, error) {
	const maxRepairs = 1 << 14
	if d.NumRepairs() > maxRepairs {
		return nil, fmt.Errorf("match: %g repairs exceed the frugality bound %d", d.NumRepairs(), maxRepairs)
	}
	type entry struct {
		facts []db.Fact
		sat   map[string]bool
	}
	var all []entry
	d.Repairs(func(facts []db.Fact) bool {
		r := db.FromFacts(facts...)
		all = append(all, entry{
			facts: append([]db.Fact(nil), facts...),
			sat:   SatisfiedInstantiations(q, r, x),
		})
		return true
	})
	subset := func(a, b map[string]bool) bool {
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}
	var out [][]db.Fact
	for i, e := range all {
		minimal := true
		for j, f := range all {
			if i == j {
				continue
			}
			// f ⪯ e strictly: sat(f) ⊂ sat(e).
			if subset(f.sat, e.sat) && !subset(e.sat, f.sat) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, e.facts)
		}
	}
	return out, nil
}

// FormatRepair renders a repair deterministically for diagnostics.
func FormatRepair(facts []db.Fact) string {
	parts := make([]string, len(facts))
	for i, f := range facts {
		parts[i] = f.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, ", ")
}
