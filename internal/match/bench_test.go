package match

import (
	"fmt"
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/query"
	"cqa/internal/workload"
)

func benchDB(blocks int, inconsistent float64) (query.Query, *db.DB) {
	rng := rand.New(rand.NewSource(7))
	q := query.MustParse("R(x | y), S(y | z)")
	d := db.New()
	for i := 0; i < blocks; i++ {
		x := query.Const(fmt.Sprintf("x%d", i))
		y := query.Const(fmt.Sprintf("y%d", i))
		d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, y}})
		d.Add(db.Fact{Rel: q.Atoms[1].Rel, Args: []query.Const{y, "z"}})
		if rng.Float64() < inconsistent {
			y2 := query.Const(fmt.Sprintf("y%db", i))
			d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{x, y2}})
		}
	}
	return q, d
}

func BenchmarkAllMatches1k(b *testing.B) {
	q, d := benchDB(1000, 0.3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AllMatches(q, d)
	}
}

func BenchmarkExistsMatch(b *testing.B) {
	q, d := benchDB(1000, 0.3)
	ix := NewIndex(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Exists(q, query.Valuation{})
	}
}

func BenchmarkPurifyNoisy(b *testing.B) {
	q, d := benchDB(500, 0.5)
	// Add irrelevant noise.
	for i := 0; i < 500; i++ {
		d.Add(db.Fact{Rel: q.Atoms[0].Rel, Args: []query.Const{
			query.Const(fmt.Sprintf("nx%d", i)), query.Const(fmt.Sprintf("ny%d", i))}})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Purify(q, d)
	}
}

func BenchmarkGPurifyQ0(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	q := workload.Q0()
	d := workload.Q0Instance(rng, 100, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GPurify(q, d); err != nil {
			b.Fatal(err)
		}
	}
}
