package match

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/query"
	"cqa/internal/workload"
)

func factsDB(t *testing.T, lines string) *db.DB {
	t.Helper()
	d, err := db.ParseFacts(nil, lines)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSatisfiesBasic(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := factsDB(t, `
		R(a | b)
		S(b | c)
	`)
	if !Satisfies(q, d) {
		t.Errorf("expected %s to satisfy %s", d, q)
	}
	d2 := factsDB(t, `
		R(a | b)
		S(c | c)
	`)
	if Satisfies(q, d2) {
		t.Errorf("expected %s to falsify %s", d2, q)
	}
}

func TestMatchWithConstantsAndRepeats(t *testing.T) {
	q := query.MustParse("R(x | y, 'k'), S(x | x)")
	d := factsDB(t, `
		R(a | b, k)
		R(a | b, notk)
		S(a | a)
		S(c | a)
	`)
	ms := AllMatches(q, d)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1: %v", len(ms), ms)
	}
	if ms[0]["x"] != "a" || ms[0]["y"] != "b" {
		t.Errorf("unexpected match %v", ms[0])
	}
}

func TestAllMatchesCountsJoins(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := factsDB(t, `
		R(a | b)
		R(a2 | b)
		S(b | c)
		S(b | c2)
	`)
	ms := AllMatches(q, d)
	if len(ms) != 4 {
		t.Fatalf("got %d matches, want 4", len(ms))
	}
	seen := map[string]bool{}
	for _, m := range ms {
		seen[m.Key()] = true
	}
	if len(seen) != 4 {
		t.Errorf("matches are not distinct: %v", ms)
	}
}

func TestMatchEarlyStop(t *testing.T) {
	q := query.MustParse("R(x | y)")
	d := factsDB(t, `
		R(a | b)
		R(c | d)
	`)
	calls := 0
	NewIndex(d).Match(q, query.Valuation{}, func(query.Valuation) bool {
		calls++
		return false
	})
	if calls != 1 {
		t.Errorf("yield called %d times after requesting stop", calls)
	}
}

func TestMatchWithPartialBinding(t *testing.T) {
	q := query.MustParse("R(x | y)")
	d := factsDB(t, `
		R(a | b)
		R(c | d)
	`)
	ix := NewIndex(d)
	var got []string
	ix.Match(q, query.Valuation{"x": "c"}, func(v query.Valuation) bool {
		got = append(got, v.Key())
		return true
	})
	if len(got) != 1 || got[0] != "x=c,y=d" {
		t.Errorf("partial binding gave %v", got)
	}
}

// TestPurifyExample1 reproduces Example 1: for q = R('a', y | z) with key
// position 1, the fact R(d, b, f) is irrelevant and is purified away.
func TestPurifyExample1(t *testing.T) {
	q := query.MustParse("R('a' | y, z)")
	d := factsDB(t, `
		R(a | b, c)
		R(d | b, f)
	`)
	p := Purify(q, d)
	if p.Len() != 1 {
		t.Fatalf("purified db has %d facts, want 1:\n%s", p.Len(), p)
	}
	if p.Facts()[0].Args[0] != "a" {
		t.Errorf("wrong fact kept: %s", p.Facts()[0])
	}
	// The relevant-for FD of Example 1 holds on the purified relation:
	// all matches agree on z given y.
	ms := AllMatches(q, p)
	if len(ms) != 1 {
		t.Fatalf("got %d matches, want 1", len(ms))
	}
}

func TestPurifyDropsForeignRelations(t *testing.T) {
	q := query.MustParse("R(x | y)")
	d := factsDB(t, `
		R(a | b)
		Zother(a | b)
	`)
	p := Purify(q, d)
	if p.Len() != 1 || p.Facts()[0].Rel.Name != "R" {
		t.Errorf("purify should drop facts of relations outside q: %s", p)
	}
}

func TestRelevantFact(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := factsDB(t, `
		R(a | b)
		R(a | dead)
		S(b | c)
	`)
	rel := d.Facts()[0]
	dead := d.Facts()[1]
	if !RelevantFact(q, d, rel) {
		t.Errorf("%s should be relevant", rel)
	}
	if RelevantFact(q, d, dead) {
		t.Errorf("%s should be irrelevant (no joining S-fact)", dead)
	}
}

// TestGBlocksGrouping: gblocks group simple-key mode-i facts by key
// constant across relations.
func TestGBlocksGrouping(t *testing.T) {
	d := factsDB(t, `
		R(a | 1)
		R(a | 2)
		S(a | 3)
		S(b | 4)
		T#c(a | 9)
	`)
	gbs, err := GBlocks(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(gbs) != 2 {
		t.Fatalf("got %d gblocks, want 2 (keys a and b)", len(gbs))
	}
	var ga GBlock
	for _, g := range gbs {
		if g.Key == "a" {
			ga = g
		}
	}
	if ga.Size() != 3 || len(ga.Blocks) != 2 || ga.NumRepairs() != 2 {
		t.Errorf("gblock a: size=%d blocks=%d repairs=%d", ga.Size(), len(ga.Blocks), ga.NumRepairs())
	}
}

// TestGPurifyExample11 reproduces Example 11: q = {R(x|y), S(x|y)} with
// db = {R(a,1), R(a,2), S(a,1), S(a,2)} is not gpurified; the repair
// {R(a,1), S(a,2)} of the single gblock is not grelevant, so the whole
// gblock is removed.
func TestGPurifyExample11(t *testing.T) {
	q := query.MustParse("R(x | y), S(x | y)")
	d := factsDB(t, `
		R(a | 1)
		R(a | 2)
		S(a | 1)
		S(a | 2)
	`)
	s := []db.Fact{d.Facts()[0], d.Facts()[3]} // R(a|1), S(a|2)
	if GRelevant(q, d, s) {
		t.Errorf("{R(a,1), S(a,2)} should not be grelevant")
	}
	s2 := []db.Fact{d.Facts()[0], d.Facts()[2]} // R(a|1), S(a|1)
	if !GRelevant(q, d, s2) {
		t.Errorf("{R(a,1), S(a,1)} should be grelevant")
	}
	gp, err := GPurify(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Len() != 0 {
		t.Errorf("gpurification should remove the whole gblock, kept:\n%s", gp)
	}
}

// TestGPurifyKeepsSupportedBlocks: when every repair of every gblock is
// grelevant, gpurification is the identity (after purification).
func TestGPurifyKeepsSupportedBlocks(t *testing.T) {
	q := query.MustParse("R(x | y), S(x | y)")
	d := factsDB(t, `
		R(a | 1)
		R(a | 2)
		S(a | 1)
		S(a | 2)
		S(a | 3)
	`)
	// Repair {R(a,1), S(a,2)} is still not grelevant; removal expected.
	gp, err := GPurify(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if gp.Len() != 0 {
		t.Errorf("expected removal, kept:\n%s", gp)
	}

	d2 := factsDB(t, `
		R(a | 1)
		S(a | 1)
	`)
	gp2, err := GPurify(q, d2)
	if err != nil {
		t.Fatal(err)
	}
	if gp2.Len() != 2 {
		t.Errorf("consistent matching gblock should survive, got:\n%s", gp2)
	}
}

// TestPurifyIsPurified: after purification every remaining fact is
// relevant (the defining property of "purified relative to q").
func TestPurifyIsPurified(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(3)
		q := workload.RandomQuery(rng, p)
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		pd := Purify(q, d)
		ix := NewIndex(pd)
		for _, f := range pd.Facts() {
			if !ix.Relevant(q, f) {
				t.Fatalf("purified db keeps irrelevant fact %s for %s\ndb:\n%s", f, q, pd)
			}
		}
	}
}

// TestPurifyBlockWithIrrelevantFactIsRemoved pins the Lemma 1 subtlety: a
// block containing an irrelevant fact must be removed wholesale, because
// a repair can select the irrelevant fact.
func TestPurifyBlockWithIrrelevantFactIsRemoved(t *testing.T) {
	q := query.MustParse("R(x | y), S(u | y)")
	d := factsDB(t, `
		R(a | 1)
		R(a | 2)
		S(u | 1)
	`)
	// R(a|2) is irrelevant (no S-fact with y=2), so block R(a|*) goes;
	// then S(u|1) loses its join partner and goes too.
	pd := Purify(q, d)
	if pd.Len() != 0 {
		t.Errorf("expected empty purified db, got:\n%s", pd)
	}
}
