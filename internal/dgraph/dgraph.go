// Package dgraph provides the small directed-graph toolkit used by attack
// graphs, Markov graphs, and the dissolution reduction: adjacency,
// reachability, Tarjan strongly connected components, condensation with
// initial components, and shortest cycles through a vertex.
package dgraph

import "sort"

// Graph is a directed graph on vertices 0..N-1.
type Graph struct {
	n   int
	adj [][]int
	has []map[int]bool
}

// New returns an empty graph with n vertices.
func New(n int) *Graph {
	return &Graph{
		n:   n,
		adj: make([][]int, n),
		has: make([]map[int]bool, n),
	}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the directed edge u -> v (idempotent).
func (g *Graph) AddEdge(u, v int) {
	if g.has[u] == nil {
		g.has[u] = make(map[int]bool)
	}
	if g.has[u][v] {
		return
	}
	g.has[u][v] = true
	g.adj[u] = append(g.adj[u], v)
}

// HasEdge reports whether u -> v is present.
func (g *Graph) HasEdge(u, v int) bool {
	return g.has[u] != nil && g.has[u][v]
}

// Succ returns the successors of u in insertion order.
func (g *Graph) Succ(u int) []int { return g.adj[u] }

// Edges returns all edges sorted lexicographically.
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			out = append(out, [2]int{u, v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Reachable returns the set of vertices reachable from start (including
// start itself) as a boolean slice.
func (g *Graph) Reachable(start int) []bool {
	seen := make([]bool, g.n)
	stack := []int{start}
	seen[start] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// ReachableAvoiding is Reachable restricted to vertices not in avoid;
// start itself must not be in avoid.
func (g *Graph) ReachableAvoiding(start int, avoid map[int]bool) []bool {
	seen := make([]bool, g.n)
	if avoid[start] {
		return seen
	}
	stack := []int{start}
	seen[start] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.adj[u] {
			if !seen[v] && !avoid[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// SCC computes strongly connected components with Tarjan's algorithm.
// It returns comp, the component index of each vertex, and the number of
// components. Component indices are in reverse topological order of the
// condensation (a component's successors have smaller indices).
func (g *Graph) SCC() (comp []int, ncomp int) {
	comp = make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, g.n)
	low := make([]int, g.n)
	onStack := make([]bool, g.n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	counter := 0

	// Iterative Tarjan to avoid recursion depth limits on large graphs.
	type frame struct {
		v, ei int
	}
	for root := 0; root < g.n; root++ {
		if index[root] != -1 {
			continue
		}
		frames := []frame{{root, 0}}
		index[root] = counter
		low[root] = counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < len(g.adj[v]) {
				w := g.adj[v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp, ncomp
}

// Condensation returns the DAG of strongly connected components: comp and
// ncomp as in SCC, plus the condensed graph whose vertices are component
// indices.
func (g *Graph) Condensation() (comp []int, ncomp int, dag *Graph) {
	comp, ncomp = g.SCC()
	dag = New(ncomp)
	for u := 0; u < g.n; u++ {
		for _, v := range g.adj[u] {
			if comp[u] != comp[v] {
				dag.AddEdge(comp[u], comp[v])
			}
		}
	}
	return comp, ncomp, dag
}

// InitialComponents returns, per Definition 1 of the paper, the strong
// components that have no predecessor: component indices with indegree
// zero in the condensation.
func (g *Graph) InitialComponents() (comp []int, initial []bool) {
	comp, ncomp, dag := g.Condensation()
	indeg := make([]int, ncomp)
	for u := 0; u < ncomp; u++ {
		for _, v := range dag.adj[u] {
			indeg[v]++
		}
	}
	initial = make([]bool, ncomp)
	for c := 0; c < ncomp; c++ {
		initial[c] = indeg[c] == 0
	}
	return comp, initial
}

// HasCycle reports whether the graph contains a directed cycle
// (a self-loop or a strongly connected component of size >= 2).
func (g *Graph) HasCycle() bool {
	comp, ncomp := g.SCC()
	size := make([]int, ncomp)
	for _, c := range comp {
		size[c]++
	}
	for u := 0; u < g.n; u++ {
		if g.HasEdge(u, u) {
			return true
		}
	}
	for _, s := range size {
		if s >= 2 {
			return true
		}
	}
	return false
}

// ShortestCycleThrough returns a shortest directed cycle through v as a
// vertex sequence v, w1, ..., wk (the closing edge wk -> v is implicit),
// or nil if v lies on no cycle. BFS from each successor of v back to v.
func (g *Graph) ShortestCycleThrough(v int) []int {
	best := []int(nil)
	for _, s := range g.Succ(v) {
		if s == v {
			return []int{v} // self-loop
		}
		// BFS from s to v.
		prev := make([]int, g.n)
		for i := range prev {
			prev[i] = -2
		}
		prev[s] = -1
		queue := []int{s}
		found := false
		for len(queue) > 0 && !found {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.adj[u] {
				if prev[w] != -2 {
					continue
				}
				prev[w] = u
				if w == v {
					found = true
					break
				}
				queue = append(queue, w)
			}
		}
		if !found {
			continue
		}
		// Reconstruct path s..v, then rotate so the cycle starts at v.
		var rev []int
		for u := prev[v]; u != -1; u = prev[u] {
			rev = append(rev, u)
		}
		// rev holds the path from the vertex before v back to s.
		cycle := []int{v}
		for i := len(rev) - 1; i >= 0; i-- {
			cycle = append(cycle, rev[i])
		}
		if best == nil || len(cycle) < len(best) {
			best = cycle
		}
	}
	return best
}
