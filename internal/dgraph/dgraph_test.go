package dgraph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if len(g.Succ(0)) != 1 {
		t.Errorf("duplicate edge stored")
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Error("HasEdge wrong")
	}
	if len(g.Edges()) != 1 {
		t.Error("Edges wrong")
	}
}

func TestReachable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reachable(0)
	if !r[0] || !r[1] || !r[2] || r[3] {
		t.Errorf("reach = %v", r)
	}
}

func TestReachableAvoiding(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 2)
	r := g.ReachableAvoiding(0, map[int]bool{1: true})
	if r[1] || !r[2] || !r[3] {
		t.Errorf("avoiding reach = %v", r)
	}
	if got := g.ReachableAvoiding(1, map[int]bool{1: true}); got[1] || got[2] {
		t.Errorf("avoided start should reach nothing: %v", got)
	}
}

func TestSCCLine(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("ncomp = %d", n)
	}
	// Reverse topological: successors get smaller component ids.
	if !(comp[2] < comp[1] && comp[1] < comp[0]) {
		t.Errorf("comp = %v", comp)
	}
}

func TestSCCCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(3, 0)
	comp, n := g.SCC()
	if n != 3 {
		t.Fatalf("ncomp = %d (comp=%v)", n, comp)
	}
	if comp[0] != comp[1] || comp[0] == comp[2] || comp[0] == comp[3] {
		t.Errorf("comp = %v", comp)
	}
}

func TestInitialComponents(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(3, 2)
	comp, initial := g.InitialComponents()
	if !initial[comp[0]] || !initial[comp[3]] {
		t.Errorf("components of 0 and 3 should be initial")
	}
	if initial[comp[2]] {
		t.Errorf("component of 2 has predecessors")
	}
}

func TestHasCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if g.HasCycle() {
		t.Error("DAG reported cyclic")
	}
	g.AddEdge(2, 0)
	if !g.HasCycle() {
		t.Error("cycle missed")
	}
	selfloop := New(1)
	selfloop.AddEdge(0, 0)
	if !selfloop.HasCycle() {
		t.Error("self-loop missed")
	}
}

func TestShortestCycleThrough(t *testing.T) {
	g := New(5)
	// Two cycles through 0: 0-1-2-0 (len 3) and 0-3-0 (len 2).
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(0, 3)
	g.AddEdge(3, 0)
	c := g.ShortestCycleThrough(0)
	if len(c) != 2 || c[0] != 0 || c[1] != 3 {
		t.Errorf("cycle = %v, want [0 3]", c)
	}
	if got := g.ShortestCycleThrough(4); got != nil {
		t.Errorf("vertex 4 is on no cycle, got %v", got)
	}
	loop := New(1)
	loop.AddEdge(0, 0)
	if got := loop.ShortestCycleThrough(0); len(got) != 1 {
		t.Errorf("self-loop cycle = %v", got)
	}
}

// Property: for random graphs, every cycle returned by
// ShortestCycleThrough consists of real edges and closes up.
func TestShortestCycleValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		g := New(n)
		for e := 0; e < 2*n; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		for v := 0; v < n; v++ {
			c := g.ShortestCycleThrough(v)
			if c == nil {
				continue
			}
			if c[0] != v {
				return false
			}
			for i := 0; i < len(c); i++ {
				if !g.HasEdge(c[i], c[(i+1)%len(c)]) {
					return false
				}
			}
			seen := map[int]bool{}
			for _, u := range c {
				if seen[u] {
					return false // not elementary
				}
				seen[u] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SCC partitions agree with mutual reachability.
func TestSCCMatchesReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		g := New(n)
		for e := 0; e < 2*n; e++ {
			g.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		comp, _ := g.SCC()
		reach := make([][]bool, n)
		for v := 0; v < n; v++ {
			reach[v] = g.Reachable(v)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				mutual := reach[u][v] && reach[v][u]
				if mutual != (comp[u] == comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCondensation(t *testing.T) {
	g := New(5)
	// SCC {0,1} -> SCC {2,3} -> {4}
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(3, 4)
	comp, ncomp, dag := g.Condensation()
	if ncomp != 3 {
		t.Fatalf("ncomp = %d", ncomp)
	}
	if !dag.HasEdge(comp[0], comp[2]) || !dag.HasEdge(comp[2], comp[4]) {
		t.Errorf("condensation edges wrong")
	}
	if dag.HasEdge(comp[0], comp[0]) {
		t.Errorf("condensation must have no self-loops")
	}
}
