package store

import (
	"fmt"
	"sync"
	"testing"

	"cqa/internal/core"
	"cqa/internal/query"
)

func TestPutGetDeleteList(t *testing.T) {
	s := New()
	if _, ok := s.Get("prod"); ok {
		t.Fatal("empty store returned a snapshot")
	}
	snap, err := s.PutFacts("prod", "R(a | b)\nR(a | c)\nS(b | d)\n")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || snap.Facts != 3 || snap.Blocks != 2 {
		t.Errorf("snapshot = %+v", snap)
	}
	if got, _ := s.Get("prod"); got != snap {
		t.Error("Get returned a different snapshot")
	}
	snap2, err := s.PutFacts("prod", "R(a | b)\n")
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Version != 2 || snap2.Facts != 1 {
		t.Errorf("replacement snapshot = %+v", snap2)
	}
	// The superseded snapshot is untouched: in-flight readers keep it.
	if snap.Facts != 3 || snap.DB.Len() != 3 {
		t.Error("old snapshot mutated by swap")
	}
	s.PutFacts("dev", "T(x | y)\n")
	names := []string{}
	for _, sn := range s.List() {
		names = append(names, sn.Name)
	}
	if len(names) != 2 || names[0] != "dev" || names[1] != "prod" {
		t.Errorf("List = %v", names)
	}
	if !s.Delete("dev") || s.Delete("dev") {
		t.Error("Delete bookkeeping wrong")
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestPutFactsRejectsBadInput(t *testing.T) {
	s := New()
	if _, err := s.PutFacts("x", "R(a | b\n"); err == nil {
		t.Error("malformed fact accepted")
	}
	if _, err := s.PutFacts("x", "T#c(a | 1)\nT#c(a | 2)\n"); err == nil {
		t.Error("mode-c key violation accepted")
	}
	if s.Len() != 0 {
		t.Error("rejected upload was published")
	}
}

// TestSnapshotIndexCached: the snapshot index is built once per version,
// shared across requests, and replaced along with the snapshot on Put;
// the store's counters record exactly one miss per build.
func TestSnapshotIndexCached(t *testing.T) {
	s := New()
	snap, err := s.PutFacts("db", "R(a | b)\nR(a | c)\nS(b | z)\n")
	if err != nil {
		t.Fatal(err)
	}
	ix1 := snap.Index()
	ix2 := snap.Index()
	if ix1 == nil || ix1 != ix2 {
		t.Fatalf("index not cached: %p vs %p", ix1, ix2)
	}
	if ix1.DB != snap.DB {
		t.Error("index built over the wrong database")
	}
	if h, m := s.IndexStats().Hits(), s.IndexStats().Misses(); h != 1 || m != 1 {
		t.Errorf("hits=%d misses=%d; want 1, 1", h, m)
	}
	snap2, err := s.PutFacts("db", "R(a | b)\n")
	if err != nil {
		t.Fatal(err)
	}
	if ix3 := snap2.Index(); ix3 == ix1 {
		t.Error("replacement snapshot reused the superseded index")
	}
	if h, m := s.IndexStats().Hits(), s.IndexStats().Misses(); h != 1 || m != 2 {
		t.Errorf("after swap: hits=%d misses=%d; want 1, 2", h, m)
	}
	// The superseded snapshot keeps serving its own index.
	if snap.Index() != ix1 {
		t.Error("old snapshot lost its index after the swap")
	}
}

// TestSnapshotIndexConcurrent: many goroutines race to build the index
// of a cold snapshot; exactly one build happens and everyone shares it.
// Run with -race.
func TestSnapshotIndexConcurrent(t *testing.T) {
	s := New()
	snap, err := s.PutFacts("db", "R(a | b)\nR(a | c)\nS(b | z)\nS(c | z)\n")
	if err != nil {
		t.Fatal(err)
	}
	const readers = 16
	indexes := make(chan interface{}, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			indexes <- snap.Index()
		}()
	}
	wg.Wait()
	close(indexes)
	first := <-indexes
	for ix := range indexes {
		if ix != first {
			t.Fatal("concurrent readers got different indexes")
		}
	}
	if m := s.IndexStats().Misses(); m != 1 {
		t.Errorf("misses = %d; want exactly 1 build", m)
	}
	if h := s.IndexStats().Hits(); h != readers-1 {
		t.Errorf("hits = %d; want %d", h, readers-1)
	}
}

// TestConcurrentSwapAndRead uploads new versions while readers resolve
// and evaluate against whatever snapshot is current; run with -race.
func TestConcurrentSwapAndRead(t *testing.T) {
	s := New()
	if _, err := s.PutFacts("db", "R(a | b)\nS(b | c)\n"); err != nil {
		t.Fatal(err)
	}
	q := query.MustParse("R(x | y), S(y | z)")
	plan, err := core.Compile(q)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				text := fmt.Sprintf("R(a | b%d)\nR(a | c%d)\nS(b%d | z)\nS(c%d | z)\n", i, i, i, i)
				if _, err := s.PutFacts("db", text); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				snap, ok := s.Get("db")
				if !ok {
					t.Errorf("reader %d: db vanished", r)
					return
				}
				if _, err := plan.Certain(snap.DB, core.Options{}); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	snap, _ := s.Get("db")
	if snap.Version != 1+4*50 {
		t.Errorf("final version = %d, want %d", snap.Version, 1+4*50)
	}
}
