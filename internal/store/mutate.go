package store

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"cqa/internal/db"
	"cqa/internal/faultinject"
	"cqa/internal/match"
	"cqa/internal/schema"
	"cqa/internal/wal"
)

// ErrNotFound reports a mutation against a name with no snapshot.
var ErrNotFound = errors.New("store: database not found")

// mutator serializes the deltas of one name into group commits: the
// first arrival becomes the leader and commits everything queued behind
// it as one Apply, so a burst of concurrent writers pays one version
// swap (and one WAL fsync) per batch instead of one per delta. All
// waiters of a batch observe the same published snapshot.
type mutator struct {
	mu    sync.Mutex
	queue []*pendingDelta
	busy  bool
}

type pendingDelta struct {
	delta db.Delta
	done  chan struct{}

	snap *Snapshot
	res  *db.ApplyResult
	err  error
}

func (p *pendingDelta) finish(snap *Snapshot, res *db.ApplyResult, err error) {
	p.snap, p.res, p.err = snap, res, err
	close(p.done)
}

func (s *Store) mutatorFor(name string) *mutator {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.muts == nil {
		s.muts = make(map[string]*mutator)
	}
	m, ok := s.muts[name]
	if !ok {
		m = &mutator{}
		s.muts[name] = m
	}
	return m
}

// ApplyDelta applies the delta to the named database's current snapshot
// and publishes the result as the next version. Concurrent deltas on
// one name are group-committed (see mutator); the returned snapshot is
// the version the delta is visible in, which batching may share across
// waiters, and the returned result carries the batch's statistics and
// change set. A delta with no net effect publishes nothing and returns
// the current snapshot. Deltas that would make a mode-c relation
// violate its primary key are rejected, checking only the blocks the
// change set names.
func (s *Store) ApplyDelta(name string, delta db.Delta) (*Snapshot, *db.ApplyResult, error) {
	if err := delta.Validate(); err != nil {
		return nil, nil, err
	}
	m := s.mutatorFor(name)
	p := &pendingDelta{delta: delta, done: make(chan struct{})}
	m.mu.Lock()
	m.queue = append(m.queue, p)
	if m.busy {
		m.mu.Unlock()
		<-p.done
		return p.snap, p.res, p.err
	}
	m.busy = true
	for len(m.queue) > 0 {
		batch := m.queue
		m.queue = nil
		m.mu.Unlock()
		s.commitBatch(name, batch)
		m.mu.Lock()
	}
	m.busy = false
	m.mu.Unlock()
	return p.snap, p.res, p.err
}

// commitBatch merges the batch into one delta, applies it to the
// current snapshot, and publishes the child version: WAL append first
// (redo logging — a crash after the append replays the mutation on
// boot), then the version swap. A merged batch that fails falls back to
// committing each delta individually, so one bad delta does not take
// its batchmates down with it.
func (s *Store) commitBatch(name string, batch []*pendingDelta) {
	var merged db.Delta
	if len(batch) == 1 {
		merged = batch[0].delta
	} else {
		for _, p := range batch {
			merged.Ops = append(merged.Ops, p.delta.Ops...)
		}
	}
	for {
		cur, ok := s.Get(name)
		if !ok {
			for _, p := range batch {
				p.finish(nil, nil, ErrNotFound)
			}
			return
		}
		child, res, err := cur.DB.ApplyChanges(merged)
		if err == nil && child != cur.DB {
			err = modeCViolation(res.Changes)
		}
		if err != nil {
			if len(batch) > 1 {
				// Attribute the failure: commit each delta on its own.
				for _, p := range batch {
					s.commitBatch(name, []*pendingDelta{p})
				}
				return
			}
			batch[0].finish(nil, nil, err)
			return
		}
		if child == cur.DB {
			// No net change: nothing to journal or publish.
			for _, p := range batch {
				p.finish(cur, res, nil)
			}
			return
		}
		snap, ok := s.publishDelta(cur, child, res, merged)
		if !ok {
			// A full upload (Put) replaced the snapshot while the batch
			// was being applied; retry against the new version.
			continue
		}
		for _, p := range batch {
			p.finish(snap, res, nil)
		}
		return
	}
}

// publishDelta swaps the child in as the next version of cur's name,
// journaling first. ok is false when cur is no longer the current
// snapshot (the batch must retry). The WAL append and the map swap
// happen under the store lock, so the journal order is exactly the
// publish order.
func (s *Store) publishDelta(cur *Snapshot, child *db.DB, res *db.ApplyResult, merged db.Delta) (*Snapshot, bool) {
	snap := &Snapshot{
		Name:      cur.Name,
		DB:        child,
		Version:   cur.Version + 1,
		Facts:     child.Len(),
		Blocks:    child.NumBlocks(),
		Relations: child.Relations(),
		LoadedAt:  time.Now(),
		stats:     cur.stats,
	}
	// The child needs no index build of its own: its memoized structures
	// derive from the parent's (Apply already respliced the columnar
	// view), so the eval index publishes eagerly and the first read after
	// the write skips the cold-start path entirely.
	snap.index.Store(match.NewIndex(child))

	s.mu.Lock()
	if s.dbs[cur.Name] != cur {
		s.mu.Unlock()
		return nil, false
	}
	if err := faultinject.Fire("store.wal.append"); err != nil {
		s.mu.Unlock()
		panic(fmt.Errorf("store: wal append: %w", err))
	}
	if s.wal != nil {
		if err := s.wal.Append(deltaRecord(cur.Name, snap.Version, merged)); err != nil {
			s.mu.Unlock()
			panic(fmt.Errorf("store: wal append: %w", err))
		}
	}
	// Chaos hook: a fault here simulates the process dying after the
	// journal append but before the publish — the window redo logging
	// exists for. Replay applies the journaled delta on boot.
	if err := faultinject.Fire("store.commit"); err != nil {
		s.mu.Unlock()
		panic(fmt.Errorf("store: commit: %w", err))
	}
	// Derive the shard pool before the swap so the first sharded read of
	// the new version reuses the parent's partitions instead of
	// rebuilding n shards. A closed parent pool (racing Delete) just
	// leaves the child to build lazily.
	if pp := cur.shardPool.Load(); pp != nil {
		if dp := pp.Derive(child, res.Changes); dp != nil {
			snap.shardPool.Store(dp)
		}
	}
	s.dbs[cur.Name] = snap
	s.mu.Unlock()
	go cur.ClosePool()
	return snap, true
}

// modeCViolation checks the blocks the change set added or modified for
// a mode-c primary-key violation — the delta analogue of PutFacts'
// whole-database legality check, in O(delta).
func modeCViolation(ch *db.ChangeSet) error {
	for name, rc := range ch.Rels {
		for _, blks := range [2][]db.Block{rc.Added, rc.Modified} {
			for _, b := range blks {
				if len(b.Facts) > 1 && b.Facts[0].Rel.Mode == schema.ModeC {
					return fmt.Errorf("store: delta makes mode-c relation %q violate its primary key", name)
				}
			}
		}
	}
	return nil
}

// SetWAL attaches the journal: every subsequent Put, ApplyDelta, and
// Delete appends a record before publishing. Attach after ReplayWAL so
// recovery does not re-journal what it replays. A WAL append failure
// panics — the store cannot honor its durability contract, and the
// serving layer's recovery middleware turns the panic into a 500.
func (s *Store) SetWAL(l *wal.Log) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.wal = l
}

// WALStats reports the attached journal's size counters; ok is false
// when the store runs without durability.
func (s *Store) WALStats() (wal.Stats, bool) {
	s.mu.RLock()
	l := s.wal
	s.mu.RUnlock()
	if l == nil {
		return wal.Stats{}, false
	}
	return l.Stats(), true
}

// ReplayWAL rebuilds the store's state from the journal in dir,
// returning the number of records applied. Replay drives the ordinary
// mutation paths, so the rebuilt version chain is exactly the chain the
// crashed process had published (verified against each record's
// journaled version). Call before SetWAL.
func (s *Store) ReplayWAL(dir string) (int, error) {
	return wal.Replay(dir, func(r wal.Record) error {
		switch r.Op {
		case "put":
			d, err := db.ParseFacts(nil, strings.Join(r.Facts, "\n"))
			if err != nil {
				return err
			}
			snap := s.Put(r.Name, d)
			if r.Version != 0 && snap.Version != r.Version {
				return fmt.Errorf("store: replay of %q reached version %d, journal says %d",
					r.Name, snap.Version, r.Version)
			}
		case "apply":
			delta, err := decodeDelta(r.Ops)
			if err != nil {
				return err
			}
			snap, _, err := s.ApplyDelta(r.Name, delta)
			if err != nil {
				return err
			}
			if r.Version != 0 && snap.Version != r.Version {
				return fmt.Errorf("store: replay of %q reached version %d, journal says %d",
					r.Name, snap.Version, r.Version)
			}
		case "delete":
			s.Delete(r.Name)
		default:
			return fmt.Errorf("store: unknown journal op %q", r.Op)
		}
		return nil
	})
}

// deltaRecord renders a delta as a journal record; facts round-trip
// through their String form.
func deltaRecord(name string, version uint64, delta db.Delta) wal.Record {
	r := wal.Record{Op: "apply", Name: name, Version: version, Ops: make([]wal.OpRec, len(delta.Ops))}
	for i, op := range delta.Ops {
		switch op.Kind {
		case db.OpInsert:
			r.Ops[i] = wal.OpRec{K: "i", F: op.Fact.String()}
		case db.OpDelete:
			r.Ops[i] = wal.OpRec{K: "d", F: op.Fact.String()}
		case db.OpUpsert:
			b := make([]string, len(op.Block))
			for j, f := range op.Block {
				b[j] = f.String()
			}
			r.Ops[i] = wal.OpRec{K: "u", B: b}
		}
	}
	return r
}

// decodeDelta parses a journaled operation list back into a delta.
func decodeDelta(ops []wal.OpRec) (db.Delta, error) {
	var delta db.Delta
	for _, op := range ops {
		switch op.K {
		case "i", "d":
			f, err := db.ParseFact(nil, op.F)
			if err != nil {
				return db.Delta{}, err
			}
			if op.K == "i" {
				delta.Insert(f)
			} else {
				delta.Delete(f)
			}
		case "u":
			fs := make([]db.Fact, len(op.B))
			for j, line := range op.B {
				f, err := db.ParseFact(nil, line)
				if err != nil {
					return db.Delta{}, err
				}
				fs[j] = f
			}
			delta.UpsertBlock(fs)
		default:
			return db.Delta{}, fmt.Errorf("store: unknown journal op kind %q", op.K)
		}
	}
	return delta, nil
}
