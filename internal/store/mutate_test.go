package store

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"cqa/internal/db"
	"cqa/internal/faultinject"
	"cqa/internal/wal"
)

func mustFact(t *testing.T, line string) db.Fact {
	t.Helper()
	f, err := db.ParseFact(nil, line)
	if err != nil {
		t.Fatalf("ParseFact(%q): %v", line, err)
	}
	return f
}

func TestApplyDeltaBasic(t *testing.T) {
	s := New()
	snap1, err := s.PutFacts("prod", "R(a | 1)\nR(a | 2)\nS(x | y)\n")
	if err != nil {
		t.Fatal(err)
	}
	var delta db.Delta
	delta.Insert(mustFact(t, "R(b | 1)"))
	delta.Delete(mustFact(t, "R(a | 2)"))
	snap2, res, err := s.ApplyDelta("prod", delta)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Version != 2 || snap2.Facts != 3 {
		t.Errorf("version=%d facts=%d", snap2.Version, snap2.Facts)
	}
	if res.Stats.Inserted != 1 || res.Stats.Deleted != 1 {
		t.Errorf("stats = %+v", res.Stats)
	}
	// The old snapshot still serves its version.
	if snap1.DB.Len() != 3 || !snap1.DB.Has(mustFact(t, "R(a | 2)")) {
		t.Error("parent snapshot changed")
	}
	cur, ok := s.Get("prod")
	if !ok || cur != snap2 {
		t.Error("store did not publish the child")
	}
	if !cur.DB.Has(mustFact(t, "R(b | 1)")) || cur.DB.Has(mustFact(t, "R(a | 2)")) {
		t.Error("child contents wrong")
	}
}

func TestApplyDeltaNotFound(t *testing.T) {
	s := New()
	var delta db.Delta
	delta.Insert(mustFact(t, "R(a | 1)"))
	if _, _, err := s.ApplyDelta("ghost", delta); err != ErrNotFound {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestApplyDeltaModeCRejected(t *testing.T) {
	s := New()
	if _, err := s.PutFacts("prod", "T#c(a | 1)\n"); err != nil {
		t.Fatal(err)
	}
	var delta db.Delta
	delta.Insert(mustFact(t, "T#c(a | 2)"))
	if _, _, err := s.ApplyDelta("prod", delta); err == nil {
		t.Fatal("mode-c violation accepted")
	}
	snap, _ := s.Get("prod")
	if snap.Version != 1 || snap.DB.Len() != 1 {
		t.Error("rejected delta still published")
	}
}

func TestApplyDeltaNoNetChange(t *testing.T) {
	s := New()
	snap1, err := s.PutFacts("prod", "R(a | 1)\n")
	if err != nil {
		t.Fatal(err)
	}
	var delta db.Delta
	delta.Insert(mustFact(t, "R(a | 1)")) // duplicate
	snap2, res, err := s.ApplyDelta("prod", delta)
	if err != nil {
		t.Fatal(err)
	}
	if snap2 != snap1 {
		t.Error("no-net-change delta published a new version")
	}
	if res.Stats.Noops != 1 {
		t.Errorf("noops = %d", res.Stats.Noops)
	}
}

// TestApplyDeltaGroupCommit queues writers behind a held mutator and
// releases them as one batch: every waiter must land in the same
// published version.
func TestApplyDeltaGroupCommit(t *testing.T) {
	s := New()
	if _, err := s.PutFacts("prod", "R(seed | 0)\n"); err != nil {
		t.Fatal(err)
	}
	m := s.mutatorFor("prod")
	m.mu.Lock()
	m.busy = true // park arrivals in the queue
	m.mu.Unlock()

	const writers = 3
	snaps := make([]*Snapshot, writers)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var delta db.Delta
			delta.Insert(mustFact(t, fmt.Sprintf("R(w%d | 1)", i)))
			snap, _, err := s.ApplyDelta("prod", delta)
			if err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
			snaps[i] = snap
		}(i)
	}
	for {
		m.mu.Lock()
		n := len(m.queue)
		m.mu.Unlock()
		if n == writers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	// Release: the next arrival becomes the leader and commits the whole
	// queue as one batch.
	m.mu.Lock()
	m.busy = false
	m.mu.Unlock()
	var last db.Delta
	last.Insert(mustFact(t, "R(last | 1)"))
	lastSnap, _, err := s.ApplyDelta("prod", last)
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, snap := range snaps {
		if snap != lastSnap {
			t.Errorf("writer %d published separately: v%d vs v%d", i, snap.Version, lastSnap.Version)
		}
	}
	if lastSnap.Version != 2 {
		t.Errorf("batch took %d versions, want 1 swap", lastSnap.Version-1)
	}
	if lastSnap.DB.Len() != 1+writers+1 {
		t.Errorf("facts = %d", lastSnap.DB.Len())
	}
}

// TestApplyDeltaBatchFallback checks that one bad delta in a merged
// batch fails alone while its batchmates commit.
func TestApplyDeltaBatchFallback(t *testing.T) {
	s := New()
	if _, err := s.PutFacts("prod", "T#c(a | 1)\nR(x | 1)\n"); err != nil {
		t.Fatal(err)
	}
	m := s.mutatorFor("prod")
	m.mu.Lock()
	m.busy = true
	m.mu.Unlock()
	errs := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var bad db.Delta
		bad.Insert(mustFact(t, "T#c(a | 2)")) // mode-c violation
		_, _, err := s.ApplyDelta("prod", bad)
		errs <- err
	}()
	for {
		m.mu.Lock()
		n := len(m.queue)
		m.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	m.mu.Lock()
	m.busy = false
	m.mu.Unlock()
	var good db.Delta
	good.Insert(mustFact(t, "R(y | 1)"))
	snap, _, err := s.ApplyDelta("prod", good)
	wg.Wait()
	if err != nil {
		t.Fatalf("good delta failed with the batch: %v", err)
	}
	if badErr := <-errs; badErr == nil {
		t.Error("bad delta committed")
	}
	if !snap.DB.Has(mustFact(t, "R(y | 1)")) || snap.DB.Has(mustFact(t, "T#c(a | 2)")) {
		t.Error("fallback committed the wrong facts")
	}
}

// TestApplyDeltaFreshRead checks write-then-read freshness: the child
// snapshot publishes with its index already derived, so the first read
// after a write never pays a cold index build.
func TestApplyDeltaFreshRead(t *testing.T) {
	s := New()
	snap1, err := s.PutFacts("prod", "R(a | 1)\nS(x | y)\n")
	if err != nil {
		t.Fatal(err)
	}
	snap1.Index() // warm the parent
	misses := s.IndexStats().Misses()
	var delta db.Delta
	delta.Insert(mustFact(t, "R(b | 2)"))
	snap2, _, err := s.ApplyDelta("prod", delta)
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Index() == nil {
		t.Fatal("no index")
	}
	if got := s.IndexStats().Misses(); got != misses {
		t.Errorf("read after write built an index: misses %d -> %d", misses, got)
	}
}

// TestApplyDeltaDerivesPool checks the shard pool of the parent
// snapshot carries over to the child incrementally.
func TestApplyDeltaDerivesPool(t *testing.T) {
	s := New()
	snap1, err := s.PutFacts("prod", "R(a | 1)\nR(b | 2)\nR(c | 3)\n")
	if err != nil {
		t.Fatal(err)
	}
	p := snap1.ShardPool(3, 0)
	deadline := time.Now().Add(5 * time.Second)
	for p.Building() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("pool never built")
		}
		time.Sleep(time.Millisecond)
	}
	var delta db.Delta
	delta.Insert(mustFact(t, "R(d | 4)"))
	snap2, _, err := s.ApplyDelta("prod", delta)
	if err != nil {
		t.Fatal(err)
	}
	st, ok := snap2.ShardStats()
	if !ok {
		t.Fatal("child snapshot has no derived pool")
	}
	if st.Total != 3 || st.Building != 0 || st.Ready != 3 {
		t.Errorf("derived pool stats = %+v", st)
	}
	total := 0
	for _, sh := range snap2.ShardPool(3, 0).Stats().Shards {
		total += sh.Blocks
	}
	if total != 4 {
		t.Errorf("derived partition covers %d blocks, want 4", total)
	}
}

func TestWALReplayRestoresChain(t *testing.T) {
	dir := t.TempDir()
	l, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New()
	s1.SetWAL(l)
	if _, err := s1.PutFacts("prod", "R(a | 1)\nR(a | 2)\n"); err != nil {
		t.Fatal(err)
	}
	var d1 db.Delta
	d1.Insert(mustFact(t, "R(b | 1)"))
	if _, _, err := s1.ApplyDelta("prod", d1); err != nil {
		t.Fatal(err)
	}
	var d2 db.Delta
	d2.Delete(mustFact(t, "R(a | 2)"))
	d2.UpsertBlock([]db.Fact{mustFact(t, "S(x | y)"), mustFact(t, "S(x | z)")})
	if _, _, err := s1.ApplyDelta("prod", d2); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.PutFacts("scratch", "T(q | 1)\n"); err != nil {
		t.Fatal(err)
	}
	s1.Delete("scratch")
	l.Close()

	s2 := New()
	n, err := s2.ReplayWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("replayed %d records, want 5", n)
	}
	snap, ok := s2.Get("prod")
	if !ok {
		t.Fatal("prod missing after replay")
	}
	want, _ := s1.Get("prod")
	if snap.Version != want.Version {
		t.Errorf("version %d, want %d", snap.Version, want.Version)
	}
	if snap.DB.Len() != want.DB.Len() {
		t.Errorf("facts %d, want %d", snap.DB.Len(), want.DB.Len())
	}
	for _, f := range want.DB.Facts() {
		if !snap.DB.Has(f) {
			t.Errorf("replayed store missing %s", f)
		}
	}
	if _, ok := s2.Get("scratch"); ok {
		t.Error("deleted database resurrected")
	}
	if s2.Len() != 1 {
		t.Errorf("store has %d databases, want 1", s2.Len())
	}
}

// TestWALCrashMidCommit simulates the process dying between the journal
// append and the in-memory publish: the acknowledged-but-unpublished
// delta must reappear on replay (redo semantics), restoring the exact
// version chain.
func TestWALCrashMidCommit(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	l, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s1 := New()
	s1.SetWAL(l)
	if _, err := s1.PutFacts("prod", "R(a | 1)\n"); err != nil {
		t.Fatal(err)
	}
	var d1 db.Delta
	d1.Insert(mustFact(t, "R(b | 1)"))
	if _, _, err := s1.ApplyDelta("prod", d1); err != nil {
		t.Fatal(err)
	}
	// The crash: the commit hook fires after the WAL append, before the
	// publish.
	faultinject.SetWindow("store.commit", 0, 1, func(int) error {
		return fmt.Errorf("simulated crash")
	})
	var d2 db.Delta
	d2.Insert(mustFact(t, "R(c | 9)"))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("commit fault did not panic")
			}
		}()
		s1.ApplyDelta("prod", d2) //nolint:errcheck // panics
	}()
	// The crashed process never published v3...
	if snap, _ := s1.Get("prod"); snap.Version != 2 {
		t.Fatalf("crashed store at version %d", snap.Version)
	}
	l.Close()
	faultinject.Reset()

	// ...but the journal has it, so recovery redoes it.
	s2 := New()
	if _, err := s2.ReplayWAL(dir); err != nil {
		t.Fatal(err)
	}
	snap, ok := s2.Get("prod")
	if !ok {
		t.Fatal("prod missing after replay")
	}
	if snap.Version != 3 {
		t.Errorf("replayed version %d, want 3 (journaled commit redone)", snap.Version)
	}
	if !snap.DB.Has(mustFact(t, "R(c | 9)")) {
		t.Error("journaled delta lost")
	}
	// Recovery re-attaches the journal and serving continues.
	l2, err := wal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	s2.SetWAL(l2)
	var d3 db.Delta
	d3.Insert(mustFact(t, "R(d | 4)"))
	snap4, _, err := s2.ApplyDelta("prod", d3)
	if err != nil {
		t.Fatal(err)
	}
	if snap4.Version != 4 {
		t.Errorf("post-recovery version %d, want 4", snap4.Version)
	}
}

// TestMutationLifecycleRaces hammers one name with concurrent full
// uploads, deltas, deletes, and reads that force index builds and shard
// pools, while replaced snapshots close their pools asynchronously. Run
// with -race; the assertions are weak on purpose — the test exists to
// let the race detector watch the snapshot lifecycle under fire.
func TestMutationLifecycleRaces(t *testing.T) {
	s := New()
	if _, err := s.PutFacts("prod", "R(a | 1)\nR(b | 2)\n"); err != nil {
		t.Fatal(err)
	}
	const iters = 150
	var wg sync.WaitGroup
	wg.Add(4)
	go func() { // full uploads
		defer wg.Done()
		for i := 0; i < iters; i++ {
			text := fmt.Sprintf("R(a | %d)\nR(u%d | 1)\n", i, i)
			if _, err := s.PutFacts("prod", text); err != nil {
				t.Errorf("put: %v", err)
			}
		}
	}()
	go func() { // deltas
		defer wg.Done()
		for i := 0; i < iters; i++ {
			var delta db.Delta
			delta.Insert(mustFact(t, fmt.Sprintf("R(w%d | 1)", i%7)))
			if i%3 == 0 {
				delta.Delete(mustFact(t, fmt.Sprintf("R(w%d | 1)", (i+1)%7)))
			}
			if _, _, err := s.ApplyDelta("prod", delta); err != nil && err != ErrNotFound {
				t.Errorf("delta: %v", err)
			}
		}
	}()
	go func() { // reads: index builds and shard pools
		defer wg.Done()
		for i := 0; i < iters; i++ {
			snap, ok := s.Get("prod")
			if !ok {
				continue
			}
			snap.Index()
			if p := snap.ShardPool(2, 0); p != nil {
				p.Stats()
			}
			snap.DB.Blocks()
		}
	}()
	go func() { // deletes and re-creates
		defer wg.Done()
		for i := 0; i < iters/10; i++ {
			time.Sleep(time.Millisecond)
			s.Delete("prod")
			if _, err := s.PutFacts("prod", "R(a | 1)\n"); err != nil {
				t.Errorf("recreate: %v", err)
			}
		}
	}()
	wg.Wait()
	// The store must end in a coherent state: one snapshot, readable.
	snap, ok := s.Get("prod")
	if !ok {
		t.Fatal("prod lost")
	}
	if snap.DB.Len() != len(snap.DB.Facts()) {
		t.Error("snapshot fact count inconsistent")
	}
	if !strings.HasPrefix(snap.Relations[0], "R") {
		t.Errorf("relations = %v", snap.Relations)
	}
}
