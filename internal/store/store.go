// Package store keeps named uncertain databases for the serving layer.
// Each upload builds a complete immutable Snapshot and swaps it in
// atomically under a write lock: requests that already resolved a name
// keep evaluating against the snapshot they hold, while new requests see
// the new version. Nothing in a published snapshot is ever mutated, so
// snapshots may be shared freely across goroutines.
package store

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cqa/internal/db"
	"cqa/internal/faultinject"
	"cqa/internal/match"
	"cqa/internal/shard"
	"cqa/internal/trace"
	"cqa/internal/wal"
)

// Snapshot is one immutable version of a named database.
type Snapshot struct {
	Name      string
	DB        *db.DB
	Version   uint64 // 1 for the first upload, +1 per replacement
	Facts     int
	Blocks    int
	Relations []string
	LoadedAt  time.Time

	indexMu sync.Mutex
	index   atomic.Pointer[match.Index]
	stats   *IndexStats // shared with the owning store; nil for bare snapshots

	shardMu   sync.Mutex
	shardPool atomic.Pointer[shard.Pool]
}

// ShardPool returns the snapshot's shard cluster for the requested
// fan-out, built on first use and shared by every subsequent request
// against this snapshot version — the sharded analogue of Index. A
// request for n <= 1 (sharding disabled) returns nil. Replacing the
// snapshot (Put) closes the replaced version's pool; requests that
// already hold it keep completing, because a closed pool degrades to
// inline execution. Safe for concurrent use.
func (s *Snapshot) ShardPool(n int, hedge time.Duration) *shard.Pool {
	if n <= 1 {
		return nil
	}
	if p := s.shardPool.Load(); p != nil {
		return p
	}
	s.shardMu.Lock()
	defer s.shardMu.Unlock()
	if p := s.shardPool.Load(); p != nil {
		return p
	}
	p := shard.NewPool(s.DB, n, shard.PoolOptions{Hedge: hedge})
	s.shardPool.Store(p)
	return p
}

// ShardStats returns the snapshot's shard-cluster summary; ok is false
// when no pool was ever built for this snapshot.
func (s *Snapshot) ShardStats() (shard.Stats, bool) {
	p := s.shardPool.Load()
	if p == nil {
		return shard.Stats{}, false
	}
	return p.Stats(), true
}

// ClosePool shuts down the snapshot's shard cluster, if one was built.
// Called when the snapshot is replaced or deleted; in-flight requests
// holding the pool still complete (closed pools execute inline).
func (s *Snapshot) ClosePool() {
	if p := s.shardPool.Load(); p != nil {
		p.Close()
	}
}

// Index returns the evaluation index of the snapshot — the match.Index
// plus the underlying block/key/active-domain structures — built on
// first use and shared by every subsequent request against this
// snapshot version. Replacing the snapshot (Put) publishes a fresh
// Snapshot and therefore a fresh index, so invalidation rides the
// existing atomic swap. Safe for concurrent use.
func (s *Snapshot) Index() *match.Index {
	return s.IndexTraced(nil)
}

// IndexTraced is Index with stage tracing: the request that actually
// builds the index records the build under the "index-build" stage —
// requests that reuse a built index record nothing, so a trace showing
// this stage is the fingerprint of a cold-snapshot request. A nil
// tracer records nothing.
func (s *Snapshot) IndexTraced(tr *trace.Tracer) *match.Index {
	if ix := s.index.Load(); ix != nil {
		if s.stats != nil {
			s.stats.hits.Add(1)
		}
		return ix
	}
	// The pointer is published only on a fully successful build, under
	// the mutex (not a sync.Once, which would mark a panicked build done
	// and poison the snapshot forever): if the build panics, the next
	// request simply retries it.
	s.indexMu.Lock()
	defer s.indexMu.Unlock()
	if ix := s.index.Load(); ix != nil {
		if s.stats != nil {
			s.stats.hits.Add(1)
		}
		return ix
	}
	sp := tr.Begin(trace.StageIndexBuild)
	defer sp.End()
	if s.stats != nil {
		s.stats.building.Add(1)
		defer s.stats.building.Add(-1)
	}
	// Chaos hook: a fault here simulates an index build blowing up
	// mid-flight. It panics so the build is visibly aborted; the serving
	// layer's recovery middleware turns the panic into a structured 500.
	if err := faultinject.Fire("store.index.build"); err != nil {
		panic(err)
	}
	ix := match.NewIndex(s.DB)
	// Warm the memoized structures now so the build cost is paid exactly
	// once, here, rather than by whichever request happens to touch a
	// cold structure first.
	s.DB.Blocks()
	s.DB.ActiveDomain()
	s.DB.Columnar()
	s.index.Store(ix)
	if s.stats != nil {
		s.stats.misses.Add(1)
	}
	tr.Add(trace.StageIndexBuild, trace.CtrFacts, int64(s.Facts))
	return ix
}

// IndexStats counts snapshot-index cache outcomes across a store: a
// miss is a request that had to build the index (first touch of a
// snapshot version), a hit is a request that reused it.
type IndexStats struct {
	hits     atomic.Uint64
	misses   atomic.Uint64
	building atomic.Int64
}

// Hits returns the number of index-cache hits.
func (s *IndexStats) Hits() uint64 { return s.hits.Load() }

// Misses returns the number of index-cache misses (index builds).
func (s *IndexStats) Misses() uint64 { return s.misses.Load() }

// Building returns the number of snapshot-index builds currently in
// flight. The readiness probe reports not-ready while it is non-zero,
// steering load balancers away during the expensive cold-start window.
func (s *IndexStats) Building() int64 { return s.building.Load() }

// Store is a registry of named database snapshots. The zero value is
// not ready; use New. All methods are safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	dbs   map[string]*Snapshot
	stats IndexStats

	// muts holds the per-name group-commit serializers (see mutate.go).
	muts map[string]*mutator
	// wal, when set, journals every mutation before it publishes.
	wal *wal.Log
}

// New returns an empty store.
func New() *Store {
	return &Store{dbs: make(map[string]*Snapshot)}
}

// IndexStats exposes the snapshot-index cache counters.
func (s *Store) IndexStats() *IndexStats { return &s.stats }

// Put publishes d as the new snapshot of the named database and returns
// it. The caller must not modify d afterwards; the store and all
// readers treat it as frozen.
func (s *Store) Put(name string, d *db.DB) *Snapshot {
	snap := &Snapshot{
		Name:      name,
		DB:        d,
		Facts:     d.Len(),
		Blocks:    d.NumBlocks(),
		Relations: d.Relations(),
		LoadedAt:  time.Now(),
		stats:     &s.stats,
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap.Version = 1
	if prev, ok := s.dbs[name]; ok {
		snap.Version = prev.Version + 1
		// Asynchronously: Close drains the old pool's queued tasks, and
		// the store lock must not wait behind a long evaluation.
		go prev.ClosePool()
	}
	if s.wal != nil {
		facts := d.Facts()
		rec := wal.Record{Op: "put", Name: name, Version: snap.Version,
			Facts: make([]string, len(facts))}
		for i, f := range facts {
			rec.Facts[i] = f.String()
		}
		if err := s.wal.Append(rec); err != nil {
			panic(fmt.Errorf("store: wal append: %w", err))
		}
	}
	s.dbs[name] = snap
	return snap
}

// PutFacts parses a facts text (one fact per line, signatures inferred
// from the bar syntax) and publishes it under the name. Uploads whose
// mode-c relations violate their primary key are rejected: such inputs
// are not legal instances of CERTAINTY(q).
func (s *Store) PutFacts(name, text string) (*Snapshot, error) {
	d, err := db.ParseFacts(nil, text)
	if err != nil {
		return nil, err
	}
	if !d.ConsistentFor() {
		return nil, fmt.Errorf("store: a mode-c relation of %q violates its primary key", name)
	}
	return s.Put(name, d), nil
}

// Get returns the current snapshot of the named database.
func (s *Store) Get(name string) (*Snapshot, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	snap, ok := s.dbs[name]
	return snap, ok
}

// Delete removes the named database; it reports whether it existed.
func (s *Store) Delete(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap, ok := s.dbs[name]
	if ok {
		if s.wal != nil {
			if err := s.wal.Append(wal.Record{Op: "delete", Name: name}); err != nil {
				panic(fmt.Errorf("store: wal append: %w", err))
			}
		}
		go snap.ClosePool()
	}
	delete(s.dbs, name)
	return ok
}

// ShardStats aggregates the shard-cluster state across every snapshot
// that has built a pool: totals for the readiness probe and metrics.
// Snapshots without a pool (sharding disabled or never requested)
// contribute nothing.
type ShardStats struct {
	Total     int
	Ready     int
	Building  int
	Unhealthy int
	Hedges    int64
	HedgeWins int64
}

// ShardStats sums the per-snapshot pool summaries.
func (s *Store) ShardStats() ShardStats {
	var out ShardStats
	for _, snap := range s.List() {
		st, ok := snap.ShardStats()
		if !ok {
			continue
		}
		out.Total += st.Total
		out.Ready += st.Ready
		out.Building += st.Building
		out.Unhealthy += st.Unhealthy
		out.Hedges += st.Hedges
		out.HedgeWins += st.HedgeWins
	}
	return out
}

// List returns the current snapshots sorted by name.
func (s *Store) List() []*Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Snapshot, 0, len(s.dbs))
	for _, snap := range s.dbs {
		out = append(out, snap)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of named databases.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.dbs)
}
