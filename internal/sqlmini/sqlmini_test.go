package sqlmini

import (
	"testing"

	"cqa/internal/db"
	"cqa/internal/query"
	"cqa/internal/schema"
)

func testDB(t *testing.T) *db.DB {
	t.Helper()
	d, err := db.ParseFacts(nil, `
		R(a | b)
		R(a | c)
		S(b | z)
	`)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExistsBasic(t *testing.T) {
	d := testDB(t)
	got, err := EvalString("SELECT 1 WHERE EXISTS (SELECT 1 FROM R r1)", d)
	if err != nil || !got {
		t.Fatalf("%v %v", got, err)
	}
	got, err = EvalString("SELECT 1 WHERE EXISTS (SELECT 1 FROM Z z1)", d)
	if err != nil || got {
		t.Fatalf("empty relation: %v %v", got, err)
	}
	got, err = EvalString("SELECT 1 WHERE NOT EXISTS (SELECT 1 FROM Z z1)", d)
	if err != nil || !got {
		t.Fatalf("negated: %v %v", got, err)
	}
}

func TestWhereConditions(t *testing.T) {
	d := testDB(t)
	cases := []struct {
		sql  string
		want bool
	}{
		{"SELECT 1 WHERE EXISTS (SELECT 1 FROM R r1 WHERE r1.c2 = 'b')", true},
		{"SELECT 1 WHERE EXISTS (SELECT 1 FROM R r1 WHERE r1.c2 = 'zzz')", false},
		{"SELECT 1 WHERE EXISTS (SELECT 1 FROM R r1 WHERE r1.c2 <> 'b')", true},
		{"SELECT 1 WHERE EXISTS (SELECT 1 FROM R r1 WHERE r1.c1 = 'a' AND r1.c2 = 'c')", true},
		{"SELECT 1 WHERE EXISTS (SELECT 1 FROM R r1 WHERE r1.c1 = 'zzz' OR r1.c2 = 'c')", true},
		{"SELECT 1 WHERE 1=1", true},
		{"SELECT 1 WHERE 1=0", false},
		{"SELECT 1 WHERE (1=1) AND (1=0)", false},
		{"SELECT 1 WHERE (1=1) OR (1=0)", true},
	}
	for _, c := range cases {
		got, err := EvalString(c.sql, d)
		if err != nil {
			t.Errorf("%s: %v", c.sql, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.sql, got, c.want)
		}
	}
}

func TestNestedCorrelation(t *testing.T) {
	d := testDB(t)
	// Every R row with key 'a' joins S on c2: false because R(a|c) has no
	// S(c | ...).
	sql := `SELECT 1 WHERE EXISTS (SELECT 1 FROM R r1 WHERE r1.c1 = 'a'
	        AND NOT EXISTS (SELECT 1 FROM R r2 WHERE r2.c1 = r1.c1
	            AND NOT (EXISTS (SELECT 1 FROM S s1 WHERE s1.c1 = r2.c2))))`
	got, err := EvalString(sql, d)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("R(a|c) has no S partner; statement should be false")
	}
	d.Add(db.Fact{Rel: d.FactsOf("S")[0].Rel, Args: []query.Const{"c", "w"}})
	got, err = EvalString(sql, d)
	if err != nil || !got {
		t.Fatalf("after adding S(c|w): %v %v", got, err)
	}
}

func TestQuotedLiteralEscape(t *testing.T) {
	d := db.New()
	rel := schema.NewRelation("R", 2, 1)
	d.Add(db.Fact{Rel: rel, Args: []query.Const{"it's", "x"}})
	got, err := EvalString("SELECT 1 WHERE EXISTS (SELECT 1 FROM R r1 WHERE r1.c1 = 'it''s')", d)
	if err != nil || !got {
		t.Fatalf("escaped literal: %v %v", got, err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"SELECT 2 WHERE 1=1",
		"SELECT 1 WHERE EXISTS (SELECT 1 FROM )",
		"SELECT 1 WHERE EXISTS (SELECT 1 FROM R r1", // unclosed
		"SELECT 1 WHERE 1=1 garbage",
		"SELECT 1 WHERE r1.q1 = 'a'",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestUnboundAliasError(t *testing.T) {
	d := testDB(t)
	if _, err := EvalString("SELECT 1 WHERE EXISTS (SELECT 1 FROM R r1 WHERE zz.c1 = 'a')", d); err == nil {
		t.Error("unbound alias should error at evaluation")
	}
}

func TestCommentsSkipped(t *testing.T) {
	d := testDB(t)
	got, err := EvalString("SELECT 1 WHERE /* a comment */ 1=1", d)
	if err != nil || !got {
		t.Fatalf("%v %v", got, err)
	}
}
