// Package sqlmini is a tiny evaluator for the SQL-92 fragment emitted by
// rewrite.SQL: boolean combinations of (NOT) EXISTS subqueries of the
// form SELECT 1 FROM <relation> <alias> [WHERE <condition>], with
// comparisons between alias.cN columns and quoted literals. It exists so
// the repository can machine-check the SQL rewriting against the direct
// certain-answer evaluator without an external database engine.
package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"cqa/internal/db"
	"cqa/internal/query"
)

// Expr is a boolean condition.
type Expr interface{ eval(env *env) (bool, error) }

// Query is a parsed "SELECT 1 WHERE <cond>" statement.
type Query struct {
	Cond Expr
}

// Eval runs the statement against the database: true when the statement
// returns a row.
func (q *Query) Eval(d *db.DB) (bool, error) {
	e := &env{d: d, rows: map[string]db.Fact{}}
	return q.Cond.eval(e)
}

type env struct {
	d    *db.DB
	rows map[string]db.Fact // alias -> current row
}

// ---- AST ----

type boolLit struct{ v bool }

type notExpr struct{ inner Expr }

func (n notExpr) eval(e *env) (bool, error) {
	v, err := n.inner.eval(e)
	return !v, err
}

type binary struct {
	op   string // AND, OR
	l, r Expr
}

type compare struct {
	op   string // =, <>
	l, r operand
}

type exists struct {
	negated bool
	rel     string
	alias   string
	where   Expr // may be nil
}

type operand struct {
	lit   string // quoted literal, valid when isLit
	isLit bool
	alias string
	col   int
}

func (b boolLit) eval(*env) (bool, error) { return b.v, nil }

func (b binary) eval(e *env) (bool, error) {
	l, err := b.l.eval(e)
	if err != nil {
		return false, err
	}
	if b.op == "AND" && !l {
		return false, nil
	}
	if b.op == "OR" && l {
		return true, nil
	}
	return b.r.eval(e)
}

func (c compare) eval(e *env) (bool, error) {
	l, err := c.l.value(e)
	if err != nil {
		return false, err
	}
	r, err := c.r.value(e)
	if err != nil {
		return false, err
	}
	if c.op == "=" {
		return l == r, nil
	}
	return l != r, nil
}

func (o operand) value(e *env) (string, error) {
	if o.isLit {
		return o.lit, nil
	}
	row, ok := e.rows[o.alias]
	if !ok {
		return "", fmt.Errorf("sqlmini: alias %s not in scope", o.alias)
	}
	if o.col < 1 || o.col > len(row.Args) {
		return "", fmt.Errorf("sqlmini: column c%d out of range for %s", o.col, o.alias)
	}
	return string(row.Args[o.col-1]), nil
}

func (x exists) eval(e *env) (bool, error) {
	found := false
	for _, f := range e.d.FactsOf(x.rel) {
		e.rows[x.alias] = f
		ok := true
		if x.where != nil {
			var err error
			ok, err = x.where.eval(e)
			if err != nil {
				delete(e.rows, x.alias)
				return false, err
			}
		}
		if ok {
			found = true
			break
		}
	}
	delete(e.rows, x.alias)
	if x.negated {
		return !found, nil
	}
	return found, nil
}

// ---- Parser ----

// Parse reads a statement of the form "SELECT 1 WHERE <cond>".
func Parse(s string) (*Query, error) {
	p := &parser{toks: tokenize(s)}
	if err := p.expectWords("SELECT", "1", "WHERE"); err != nil {
		return nil, err
	}
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if !p.atEnd() {
		return nil, fmt.Errorf("sqlmini: trailing tokens at %q", p.peek())
	}
	return &Query{Cond: cond}, nil
}

type parser struct {
	toks []string
	pos  int
}

func tokenize(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case unicode.IsSpace(rune(c)):
			i++
		case c == '(' || c == ')' || c == ',':
			toks = append(toks, string(c))
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(s) {
				if s[j] == '\'' {
					if j+1 < len(s) && s[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			toks = append(toks, "'"+sb.String())
			i = j + 1
		case c == '=':
			toks = append(toks, "=")
			i++
		case c == '<' && i+1 < len(s) && s[i+1] == '>':
			toks = append(toks, "<>")
			i += 2
		case c == '/' && i+1 < len(s) && s[i+1] == '*':
			j := strings.Index(s[i:], "*/")
			if j < 0 {
				i = len(s)
			} else {
				i += j + 2
			}
		default:
			j := i
			for j < len(s) && (s[j] == '.' || s[j] == '_' || unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j]))) {
				j++
			}
			if j == i {
				toks = append(toks, string(c))
				i++
			} else {
				toks = append(toks, s[i:j])
				i = j
			}
		}
	}
	return toks
}

func (p *parser) atEnd() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.atEnd() {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expectWords(words ...string) error {
	for _, w := range words {
		if !strings.EqualFold(p.peek(), w) {
			return fmt.Errorf("sqlmini: expected %q, got %q", w, p.peek())
		}
		p.next()
	}
	return nil
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "OR") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = binary{op: "OR", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for strings.EqualFold(p.peek(), "AND") {
		p.next()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = binary{op: "AND", l: l, r: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch {
	case strings.EqualFold(p.peek(), "NOT"):
		p.next()
		if strings.EqualFold(p.peek(), "EXISTS") {
			return p.parseExists(true)
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{inner}, nil
	case strings.EqualFold(p.peek(), "EXISTS"):
		return p.parseExists(false)
	case p.peek() == "(":
		p.next()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, fmt.Errorf("sqlmini: missing )")
		}
		return e, nil
	default:
		return p.parseComparison()
	}
}

func (p *parser) parseExists(negated bool) (Expr, error) {
	p.next() // EXISTS
	if p.next() != "(" {
		return nil, fmt.Errorf("sqlmini: EXISTS needs (")
	}
	if err := p.expectWords("SELECT", "1", "FROM"); err != nil {
		return nil, err
	}
	rel := p.next()
	alias := p.next()
	var where Expr
	if strings.EqualFold(p.peek(), "WHERE") {
		p.next()
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		where = w
	}
	if p.next() != ")" {
		return nil, fmt.Errorf("sqlmini: EXISTS not closed")
	}
	return exists{negated: negated, rel: rel, alias: alias, where: where}, nil
}

func (p *parser) parseComparison() (Expr, error) {
	tok := p.peek()
	// 1=1 and 1=0 arrive as single tokens from the tokenizer ("1", "=",
	// "1") — handle the general operand form.
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	op := p.next()
	if op != "=" && op != "<>" {
		return nil, fmt.Errorf("sqlmini: expected comparison near %q, got %q", tok, op)
	}
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	// Constant-fold 1=1 / 1=0.
	if l.isLit && r.isLit {
		if op == "=" {
			return boolLit{l.lit == r.lit}, nil
		}
		return boolLit{l.lit != r.lit}, nil
	}
	return compare{op: op, l: l, r: r}, nil
}

func (p *parser) parseOperand() (operand, error) {
	t := p.next()
	if t == "" {
		return operand{}, fmt.Errorf("sqlmini: unexpected end of input")
	}
	if strings.HasPrefix(t, "'") {
		return operand{isLit: true, lit: t[1:]}, nil
	}
	if dot := strings.IndexByte(t, '.'); dot > 0 {
		alias := t[:dot]
		colPart := t[dot+1:]
		if !strings.HasPrefix(colPart, "c") {
			return operand{}, fmt.Errorf("sqlmini: bad column reference %q", t)
		}
		col, err := strconv.Atoi(colPart[1:])
		if err != nil {
			return operand{}, fmt.Errorf("sqlmini: bad column reference %q", t)
		}
		return operand{alias: alias, col: col}, nil
	}
	// Bare numeric literal (as in the 1=1 guards).
	if _, err := strconv.Atoi(t); err == nil {
		return operand{isLit: true, lit: t}, nil
	}
	return operand{}, fmt.Errorf("sqlmini: unexpected operand %q", t)
}

// EvalString parses and evaluates a statement in one step.
func EvalString(sql string, d *db.DB) (bool, error) {
	q, err := Parse(sql)
	if err != nil {
		return false, err
	}
	return q.Eval(d)
}

// Columns is a helper for tests: it returns the positional column name
// for index i (1-based), matching rewrite.SQL's naming.
func Columns(i int) query.Const {
	return query.Const(fmt.Sprintf("c%d", i))
}
