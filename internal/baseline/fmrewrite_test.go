package baseline

import (
	"math/rand"
	"testing"

	"cqa/internal/db"
	"cqa/internal/naive"
	"cqa/internal/query"
	"cqa/internal/rewrite"
	"cqa/internal/workload"
)

func TestFMCertainRejectsOutsideCforest(t *testing.T) {
	if _, err := FMCertain(workload.Q0(), nil); err == nil {
		t.Fatal("q0 is not in Cforest")
	}
}

func TestFMCertainBasic(t *testing.T) {
	q := query.MustParse("R(x | y), S(y | z)")
	d := mustFacts(t, `
		R(a | b)
		S(b | c)
	`)
	got, err := FMCertain(q, d)
	if err != nil || !got {
		t.Fatalf("got %v, %v", got, err)
	}
	d.Add(mustFacts(t, "R(a | dead)").Facts()[0])
	got, err = FMCertain(q, d)
	if err != nil || got {
		t.Fatalf("after dead tuple: got %v, %v", got, err)
	}
}

// TestFMAgreesWithKW: on Cforest queries the Fuxman-Miller evaluation
// agrees with the Lemma 9/10 engine and the oracle.
func TestFMAgreesWithKW(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	tested := 0
	for trial := 0; trial < 4000 && tested < 250; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(4)
		q := workload.RandomQuery(rng, p)
		if !InCforest(q) {
			continue
		}
		tested++
		d := workload.RandomDB(rng, q, workload.DefaultDBParams())
		fm, err := FMCertain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		kw, err := rewrite.Certain(q, d)
		if err != nil {
			t.Fatal(err)
		}
		if fm != kw {
			t.Fatalf("FM=%v KW=%v on %s\ndb:\n%s", fm, kw, q, d)
		}
		if d.NumRepairs() <= 1<<12 {
			oracle, err := naive.Certain(q, d)
			if err != nil {
				t.Fatal(err)
			}
			if fm != oracle {
				t.Fatalf("FM=%v oracle=%v on %s\ndb:\n%s", fm, oracle, q, d)
			}
		}
	}
	if tested < 100 {
		t.Fatalf("only %d Cforest queries tested", tested)
	}
}

func mustFacts(t *testing.T, lines string) *db.DB {
	t.Helper()
	d, err := db.ParseFacts(nil, lines)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
