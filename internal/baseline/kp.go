package baseline

import (
	"fmt"

	"cqa/internal/query"
	"cqa/internal/schema"
)

// KPClass is the two-valued answer of the Kolaitis-Pema dichotomy.
type KPClass int

const (
	// KPPolynomial: CERTAINTY(q) is in P.
	KPPolynomial KPClass = iota
	// KPCoNPComplete: CERTAINTY(q) is coNP-complete.
	KPCoNPComplete
)

func (c KPClass) String() string {
	if c == KPCoNPComplete {
		return "coNP-complete"
	}
	return "P"
}

// closure2 computes the closure of a variable set under the two key
// dependencies of a two-atom query, written out directly so that this
// baseline does not share code with the attack-graph machinery.
func closure2(start query.VarSet, fds [][2]query.VarSet) query.VarSet {
	out := start.Clone()
	for changed := true; changed; {
		changed = false
		for _, f := range fds {
			if f[0].SubsetOf(out) {
				for v := range f[1] {
					if !out.Has(v) {
						out.Add(v)
						changed = true
					}
				}
			}
		}
	}
	return out
}

// KPClassify implements the Kolaitis-Pema dichotomy for self-join-free
// conjunctive queries with exactly two atoms (IPL 2012): CERTAINTY(q) is
// coNP-complete iff the atoms attack each other and at least one of the
// attacks is strong; otherwise it is in P. For two atoms F, G the attack
// F -> G reduces to a single condition — some shared variable escapes the
// closure of key(F) under G's key dependency — which this function
// evaluates directly.
func KPClassify(q query.Query) (KPClass, error) {
	if q.Len() != 2 {
		return KPPolynomial, fmt.Errorf("baseline: Kolaitis-Pema needs exactly two atoms, got %d", q.Len())
	}
	if !q.SelfJoinFree() {
		return KPPolynomial, fmt.Errorf("baseline: query has a self-join")
	}
	for _, a := range q.Atoms {
		if a.Rel.Mode == schema.ModeC {
			return KPPolynomial, fmt.Errorf("baseline: Kolaitis-Pema fragment has no mode-c relations, got %s", a.Rel)
		}
	}
	f, g := q.Atoms[0], q.Atoms[1]
	fdF := [2]query.VarSet{f.KeyVars(), f.Vars()}
	fdG := [2]query.VarSet{g.KeyVars(), g.Vars()}
	shared := f.Vars().Intersect(g.Vars())

	attacksFG := false
	plusF := closure2(f.KeyVars(), [][2]query.VarSet{fdG})
	for v := range shared {
		if !plusF.Has(v) {
			attacksFG = true
		}
	}
	attacksGF := false
	plusG := closure2(g.KeyVars(), [][2]query.VarSet{fdF})
	for v := range shared {
		if !plusG.Has(v) {
			attacksGF = true
		}
	}
	if !attacksFG || !attacksGF {
		return KPPolynomial, nil
	}
	both := [][2]query.VarSet{fdF, fdG}
	weakFG := g.KeyVars().SubsetOf(closure2(f.KeyVars(), both))
	weakGF := f.KeyVars().SubsetOf(closure2(g.KeyVars(), both))
	if weakFG && weakGF {
		return KPPolynomial, nil
	}
	return KPCoNPComplete, nil
}
