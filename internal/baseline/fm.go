// Package baseline implements the classification tests from the three
// lines of prior work the paper subsumes, used as concordance baselines:
//
//   - Fuxman & Miller's Cforest class of first-order-rewritable queries
//     (ICDT 2005), based on join graphs;
//   - Kolaitis & Pema's dichotomy for two-atom queries (IPL 2012);
//   - Koutris & Suciu's dichotomy for simple-key queries (ICDT 2014),
//     here via an independent reimplementation of the two-cycle criterion
//     on the simple-key fragment.
//
// The paper's Theorem 1 strictly generalizes all three, so each baseline
// must agree with the trichotomy on its own domain; the concordance tests
// in this package's test file verify exactly that.
package baseline

import (
	"cqa/internal/query"
)

// JoinGraphEdge is a directed edge of the Fuxman-Miller join graph: there
// is an edge from atom i to atom j when a variable at a non-key position
// of atom i occurs (anywhere) in atom j.
type JoinGraphEdge struct{ From, To int }

// JoinGraph returns the Fuxman-Miller join graph of q (not to be confused
// with a classical join tree).
func JoinGraph(q query.Query) []JoinGraphEdge {
	var edges []JoinGraphEdge
	for i, a := range q.Atoms {
		nk := a.NonKeyVars()
		for j, b := range q.Atoms {
			if i == j {
				continue
			}
			if nk.Intersects(b.Vars()) {
				edges = append(edges, JoinGraphEdge{From: i, To: j})
			}
		}
	}
	return edges
}

// InCforest reports whether q belongs to Fuxman and Miller's class
// Cforest: the join graph is a forest (no directed cycles, indegree at
// most one) and every edge is a full join — the variables shared from the
// non-key of the source into the target are exactly the target's key
// variables, with the target's whole key consisting of variables.
// Fuxman and Miller prove that every Cforest query has a consistent
// first-order rewriting, so Cforest ⊆ FO in the trichotomy.
func InCforest(q query.Query) bool {
	if !q.SelfJoinFree() {
		return false
	}
	edges := JoinGraph(q)
	indeg := make([]int, q.Len())
	adj := make([][]int, q.Len())
	for _, e := range edges {
		indeg[e.To]++
		adj[e.From] = append(adj[e.From], e.To)
	}
	for _, d := range indeg {
		if d > 1 {
			return false
		}
	}
	// Cycle check (indegree <= 1 makes any cycle a simple rho-shape).
	color := make([]int, q.Len())
	var visit func(v int) bool
	visit = func(v int) bool {
		color[v] = 1
		for _, w := range adj[v] {
			if color[w] == 1 {
				return false
			}
			if color[w] == 0 && !visit(w) {
				return false
			}
		}
		color[v] = 2
		return true
	}
	for v := 0; v < q.Len(); v++ {
		if color[v] == 0 && !visit(v) {
			return false
		}
	}
	// Full-join check.
	for _, e := range edges {
		src, dst := q.Atoms[e.From], q.Atoms[e.To]
		shared := src.NonKeyVars().Intersect(dst.Vars())
		dstKey := dst.KeyVars()
		if !shared.Equal(dstKey) {
			return false
		}
		for _, t := range dst.KeyArgs() {
			if t.IsConst() {
				return false
			}
		}
	}
	return true
}
