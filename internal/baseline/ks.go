package baseline

import (
	"fmt"

	"cqa/internal/query"
	"cqa/internal/schema"
)

// KSClass is the two-valued answer of the Koutris-Suciu dichotomy for
// simple-key queries.
type KSClass int

const (
	// KSPolynomial: CERTAINTY(q) is in P.
	KSPolynomial KSClass = iota
	// KSCoNPComplete: CERTAINTY(q) is coNP-complete.
	KSCoNPComplete
)

func (c KSClass) String() string {
	if c == KSCoNPComplete {
		return "coNP-complete"
	}
	return "P"
}

// KSClassify decides the Koutris-Suciu dichotomy (ICDT 2014) for
// self-join-free queries in which every primary key consists of a single
// attribute holding a variable and no constants occur. Theorem 1 of
// Koutris & Wijsen subsumes that dichotomy, and on the simple-key
// fragment the boundary coincides with the existence of a strong attack
// 2-cycle; this function evaluates that boundary from first principles
// (single-variable key dependencies only), independently of the attack
// package, so the two implementations check each other.
func KSClassify(q query.Query) (KSClass, error) {
	if !q.SelfJoinFree() {
		return KSPolynomial, fmt.Errorf("baseline: query has a self-join")
	}
	type simpleAtom struct {
		key  query.Var
		vars query.VarSet
	}
	atoms := make([]simpleAtom, 0, q.Len())
	for _, a := range q.Atoms {
		if a.Rel.Mode != schema.ModeI || !a.Rel.SimpleKey() {
			return KSPolynomial, fmt.Errorf("baseline: Koutris-Suciu fragment needs mode-i simple keys, got %s", a.Rel)
		}
		if a.HasConstants() {
			return KSPolynomial, fmt.Errorf("baseline: Koutris-Suciu fragment has no constants, got %s", a)
		}
		atoms = append(atoms, simpleAtom{key: a.KeyArgs()[0].Var(), vars: a.Vars()})
	}
	// closure under the key dependencies of a subset of atoms (mask).
	closure := func(start query.VarSet, skip int) query.VarSet {
		out := start.Clone()
		for changed := true; changed; {
			changed = false
			for i, a := range atoms {
				if i == skip || !out.Has(a.key) {
					continue
				}
				for v := range a.vars {
					if !out.Has(v) {
						out.Add(v)
						changed = true
					}
				}
			}
		}
		return out
	}
	// attacks(i, j): reachability from atom i to atom j over pairs of
	// atoms sharing a variable outside closure(key(i)) without atom i's
	// own dependency.
	n := len(atoms)
	attacks := func(i, j int) bool {
		plus := closure(query.NewVarSet(atoms[i].key), i)
		seen := make([]bool, n)
		seen[i] = true
		stack := []int{i}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if u == j && u != i {
				return true
			}
			for v := 0; v < n; v++ {
				if seen[v] {
					continue
				}
				escape := false
				for w := range atoms[u].vars.Intersect(atoms[v].vars) {
					if !plus.Has(w) {
						escape = true
						break
					}
				}
				if escape {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		return false
	}
	weak := func(i, j int) bool {
		return closure(query.NewVarSet(atoms[i].key), -1).Has(atoms[j].key)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if attacks(i, j) && attacks(j, i) && (!weak(i, j) || !weak(j, i)) {
				return KSCoNPComplete, nil
			}
		}
	}
	return KSPolynomial, nil
}
