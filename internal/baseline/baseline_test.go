package baseline

import (
	"math/rand"
	"testing"

	"cqa/internal/attack"
	"cqa/internal/query"
	"cqa/internal/workload"
)

// TestCforestSubsetOfFO: every Cforest query must be classified FO by the
// trichotomy (Fuxman-Miller rewritability is subsumed by Theorem 2).
func TestCforestSubsetOfFO(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	inForest := 0
	for trial := 0; trial < 3000; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 1 + rng.Intn(4)
		q := workload.RandomQuery(rng, p)
		if !InCforest(q) {
			continue
		}
		inForest++
		cls, _, err := attack.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		if cls != attack.FO {
			t.Fatalf("Cforest query %s classified %v, want FO", q, cls)
		}
	}
	if inForest < 50 {
		t.Fatalf("only %d Cforest queries generated; loosen the generator", inForest)
	}
}

func TestCforestExamples(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		{"R(x | y), S(y | z)", true},    // key join chain
		{"R(x | y), S(u | y)", false},   // non-key join (not full key)
		{"R0(x | y), S0(y | x)", false}, // join-graph cycle
		{"R(x | y)", true},              // single atom
		{"R(x | y), S(y | z), T(z | w)", true},
		{"R(x | y, z), S(y | w)", true},      // full-key join on y
		{"R(x | y, z), S(y, z | w)", true},   // full composite key
		{"R(x | y, z), S(z, y2 | w)", false}, // partial key join
	}
	for _, c := range cases {
		q := query.MustParse(c.q)
		if got := InCforest(q); got != c.want {
			t.Errorf("InCforest(%q) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestKPAgreesWithTrichotomy: on two-atom queries, the Kolaitis-Pema
// dichotomy (P vs coNP-complete) matches the trichotomy's boundary.
func TestKPAgreesWithTrichotomy(t *testing.T) {
	rng := rand.New(rand.NewSource(307))
	for trial := 0; trial < 2000; trial++ {
		p := workload.DefaultQueryParams()
		p.Atoms = 2
		q := workload.RandomQuery(rng, p)
		if q.Len() != 2 {
			continue
		}
		kp, err := KPClassify(q)
		if err != nil {
			continue // outside the Kolaitis-Pema fragment (mode-c atom)
		}
		cls, _, err := attack.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		wantHard := cls == attack.CoNPComplete
		gotHard := kp == KPCoNPComplete
		if wantHard != gotHard {
			t.Fatalf("KP=%v trichotomy=%v on %s", kp, cls, q)
		}
	}
}

// TestKSAgreesWithTrichotomy: on the simple-key fragment, the
// Koutris-Suciu dichotomy matches the trichotomy's P/coNP boundary.
func TestKSAgreesWithTrichotomy(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	tested := 0
	for trial := 0; trial < 3000; trial++ {
		q := workload.RandomSimpleKeyQuery(rng, 1+rng.Intn(5), 3, 4)
		ks, err := KSClassify(q)
		if err != nil {
			continue
		}
		tested++
		cls, _, err := attack.Classify(q)
		if err != nil {
			t.Fatal(err)
		}
		wantHard := cls == attack.CoNPComplete
		gotHard := ks == KSCoNPComplete
		if wantHard != gotHard {
			t.Fatalf("KS=%v trichotomy=%v on %s", ks, cls, q)
		}
	}
	if tested < 500 {
		t.Fatalf("only %d simple-key queries tested", tested)
	}
}

func TestKPRejectsWrongArity(t *testing.T) {
	if _, err := KPClassify(query.MustParse("R(x | y)")); err == nil {
		t.Error("expected error for one atom")
	}
	if _, err := KPClassify(query.MustParse("R(x | y), S(y | z), T(z | x)")); err == nil {
		t.Error("expected error for three atoms")
	}
}

func TestKSRejectsOutOfFragment(t *testing.T) {
	if _, err := KSClassify(query.MustParse("R(x, y | z)")); err == nil {
		t.Error("expected error for composite key")
	}
	if _, err := KSClassify(query.MustParse("R(x | 'c')")); err == nil {
		t.Error("expected error for constants")
	}
	if _, err := KSClassify(query.MustParse("R#c(x | y)")); err == nil {
		t.Error("expected error for mode-c atom")
	}
}

func TestKnownKPExamples(t *testing.T) {
	hard, err := KPClassify(query.MustParse("R(x | y), S(u | y)"))
	if err != nil || hard != KPCoNPComplete {
		t.Errorf("non-key join should be coNP-complete: %v %v", hard, err)
	}
	easy, err := KPClassify(workload.Q0())
	if err != nil || easy != KPPolynomial {
		t.Errorf("q0 should be P: %v %v", easy, err)
	}
}
