package baseline

import (
	"fmt"

	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/query"
)

// FMCertain evaluates CERTAINTY(q) for queries in Fuxman and Miller's
// class Cforest, following the recursive structure of their first-order
// rewriting (ICDT 2005): process the join forest root-first; for each
// root atom, some block must match the key pattern such that EVERY fact
// of the block satisfies the non-key pattern and recursively certain
// subtrees. This is the historical baseline the paper generalizes; on
// Cforest queries it must agree with the Lemma 9/10 engine, which the
// tests verify.
func FMCertain(q query.Query, d *db.DB) (bool, error) {
	if !InCforest(q) {
		return false, fmt.Errorf("baseline: %s is not in Cforest", q)
	}
	e := &fmEval{ix: match.NewIndex(d), memo: map[string]bool{}}
	return e.certain(q), nil
}

type fmEval struct {
	ix   *match.Index
	memo map[string]bool
}

func (e *fmEval) certain(q query.Query) bool {
	if q.Empty() {
		return true
	}
	key := q.Canonical()
	if v, ok := e.memo[key]; ok {
		return v
	}
	res := e.certainUncached(q)
	e.memo[key] = res
	return res
}

func (e *fmEval) certainUncached(q query.Query) bool {
	root, ok := forestRoot(q)
	if !ok {
		return false
	}
	f := q.Atoms[root]
	rest := q.Remove(f)
	for _, b := range e.ix.DB.BlocksOf(f.Rel.Name) {
		if len(b.Facts) == 0 {
			continue
		}
		theta := query.Valuation{}
		if !match.UnifyTerms(f.KeyArgs(), b.Facts[0].Key(), theta) {
			continue
		}
		allGood := true
		for _, fact := range b.Facts {
			thetaPlus := theta.Clone()
			if !match.UnifyTerms(f.NonKeyArgs(), fact.NonKey(), thetaPlus) {
				allGood = false
				break
			}
			if !e.certain(rest.Substitute(thetaPlus)) {
				allGood = false
				break
			}
		}
		if allGood {
			return true
		}
	}
	return false
}

// forestRoot returns an atom with indegree zero in the join graph: a
// root of the join forest. Instantiated queries may have fewer join
// edges than the original, so roots always exist for (instantiations
// of) Cforest queries.
func forestRoot(q query.Query) (int, bool) {
	indeg := make([]int, q.Len())
	for _, e := range JoinGraph(q) {
		indeg[e.To]++
	}
	for i, d := range indeg {
		if d == 0 {
			return i, true
		}
	}
	return 0, false
}
