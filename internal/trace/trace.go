// Package trace is the stage-level observability layer of the
// evaluation engines: a zero-dependency span/event recorder that tells
// an operator *where* a request spent its time — plan compilation,
// snapshot index build, purification, the eliminator walk, the ptime
// dissolution pipeline, or the coNP repair search — together with the
// per-stage effort counters the engines already maintain (recursion
// steps, memo hits, DPLL nodes and restarts, Lemma 9 branches, Markov
// dissolutions).
//
// The design mirrors evalctx.Checker: a nil *Tracer is valid everywhere
// and records nothing, so every instrumented call site costs one nil
// check on the disabled path and allocates nothing per request. An
// enabled Tracer is safe for concurrent use — the answer-pool workers
// of one request share it — because every write lands in an atomic:
// per-stage aggregates are atomic counters, and the bounded event ring
// packs each span into a single uint64 slot claimed with an atomic
// increment.
package trace

import (
	"sync/atomic"
	"time"
)

// Stage enumerates the instrumented evaluation stages, in roughly the
// order a request flows through them.
type Stage uint8

const (
	// StageNormalize is query parsing and canonicalization.
	StageNormalize Stage = iota
	// StageCompile is plan compilation: attack-graph classification
	// plus, for FO queries, the rewriting and the eliminator.
	StageCompile
	// StageIndexBuild is the snapshot evaluation-index build (blocks by
	// key, active domain) on a cold snapshot version.
	StageIndexBuild
	// StagePurify is Lemma 1 purification (and its fixpoint rounds).
	StagePurify
	// StageMatch is embedding enumeration (AllMatches) outside an
	// engine's inner loop.
	StageMatch
	// StageEliminator is the compiled FO atom-elimination walk.
	StageEliminator
	// StagePTime is the Theorem 4 dissolution pipeline.
	StagePTime
	// StageCoNP is the DPLL falsifying-repair search.
	StageCoNP
	// StageSampling is the degraded repair-sampling path of a
	// budget-exhausted coNP evaluation.
	StageSampling
	// StageShard is one per-shard evaluation task of the scatter-gather
	// path: a request evaluated over N shards closes N spans of this
	// stage (plus one per hedged duplicate), so MaxUs vs the mean span
	// exposes straggler amplification.
	StageShard
	// StageShardIndex is the per-shard block-index build of a sharded
	// snapshot (the shard-local analogue of StageIndexBuild).
	StageShardIndex
	// StageCount is the #CERTAINTY repair-counting engine: constraint
	// extraction, component factorization, and the per-component exact
	// enumeration or Monte Carlo estimation.
	StageCount
	numStages
)

var stageNames = [numStages]string{
	"normalize", "compile", "index-build", "purify", "match",
	"eliminator", "ptime", "conp", "sampling", "shard", "shard-index",
	"count",
}

// String names the stage as it appears in breakdowns and metrics.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Counter enumerates the per-stage effort counters. Not every counter
// is meaningful for every stage; a stage reports the ones its engine
// maintains.
type Counter uint8

const (
	// CtrSteps counts engine steps (recursion calls, candidate facts).
	CtrSteps Counter = iota
	// CtrMemoHits / CtrMemoMisses count memo-table outcomes.
	CtrMemoHits
	CtrMemoMisses
	// CtrNodes counts DPLL decisions (search nodes).
	CtrNodes
	// CtrRestarts counts DPLL backtracks (failed subtrees).
	CtrRestarts
	// CtrBranches counts Lemma 9 block/fact branches.
	CtrBranches
	// CtrDissolutions counts Markov-cycle dissolutions.
	CtrDissolutions
	// CtrRounds counts fixpoint rounds (purification).
	CtrRounds
	// CtrFacts counts facts touched or removed by the stage.
	CtrFacts
	// CtrMatches counts enumerated embeddings.
	CtrMatches
	// CtrComponents counts independent constraint components factorized
	// by the repair counter.
	CtrComponents
	// CtrSamples counts Monte Carlo repair samples drawn by anytime
	// estimation (oversized counting components, coNP degradation).
	CtrSamples
	numCounters
)

var counterNames = [numCounters]string{
	"steps", "memo_hits", "memo_misses", "nodes", "restarts",
	"branches", "dissolutions", "rounds", "facts", "matches",
	"components", "samples",
}

// String names the counter.
func (c Counter) String() string {
	if int(c) < len(counterNames) {
		return counterNames[c]
	}
	return "unknown"
}

// RingSize is the capacity of the per-tracer event ring (a power of
// two). A request rarely records more than a few dozen spans; the ring
// bounds pathological cases (deep ptime recursions) without growing.
const RingSize = 256

// stageAgg aggregates all spans of one stage.
type stageAgg struct {
	spans atomic.Int64
	nanos atomic.Int64
	// maxNanos is the longest single span of the stage (CAS-maintained),
	// so fan-out stages expose their straggler without per-span storage.
	maxNanos atomic.Int64
	counters [numCounters]atomic.Int64
}

// Tracer records the spans and counters of one evaluation request.
// The zero of *Tracer (nil) records nothing; create with New.
type Tracer struct {
	start  time.Time
	stages [numStages]stageAgg
	head   atomic.Uint64
	ring   [RingSize]atomic.Uint64
}

// New returns an enabled tracer whose event clock starts now.
func New() *Tracer {
	return &Tracer{start: time.Now()}
}

// Span is an open interval of one stage. The zero Span (from a nil
// tracer) is valid and End is a no-op on it.
type Span struct {
	t     *Tracer
	stage Stage
	start time.Time
}

// Begin opens a span of the stage. On a nil tracer it returns the zero
// span without reading the clock, so the disabled path costs one
// branch.
func (t *Tracer) Begin(stage Stage) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, stage: stage, start: time.Now()}
}

// End closes the span: its duration is added to the stage aggregate and
// the span is appended to the event ring.
func (sp Span) End() {
	t := sp.t
	if t == nil {
		return
	}
	now := time.Now()
	dur := now.Sub(sp.start)
	agg := &t.stages[sp.stage]
	agg.spans.Add(1)
	agg.nanos.Add(int64(dur))
	for {
		max := agg.maxNanos.Load()
		if int64(dur) <= max || agg.maxNanos.CompareAndSwap(max, int64(dur)) {
			break
		}
	}
	t.record(sp.stage, sp.start.Sub(t.start), dur)
}

// Add accumulates n into the stage's counter. Safe (and free) on a nil
// tracer or with n == 0.
func (t *Tracer) Add(stage Stage, c Counter, n int64) {
	if t == nil || n == 0 {
		return
	}
	t.stages[stage].counters[c].Add(n)
}

// Enabled reports whether the tracer records (false for nil). Use it to
// skip work that only feeds the tracer, like formatting.
func (t *Tracer) Enabled() bool { return t != nil }

// --- bounded event ring ---
//
// Each event packs into one uint64 so that concurrent recording needs
// no locks and readers never observe a torn event:
//
//	bits 56..63  stage
//	bits 28..55  start offset, microseconds (saturating, ~4.5 min)
//	bits  0..27  duration, microseconds (saturating, ~4.5 min)
const (
	microsMask = 1<<28 - 1
)

func packEvent(stage Stage, start, dur time.Duration) uint64 {
	su := uint64(start / time.Microsecond)
	if su > microsMask {
		su = microsMask
	}
	du := uint64(dur / time.Microsecond)
	if du > microsMask {
		du = microsMask
	}
	return uint64(stage)<<56 | su<<28 | du
}

func (t *Tracer) record(stage Stage, start, dur time.Duration) {
	slot := (t.head.Add(1) - 1) % RingSize
	t.ring[slot].Store(packEvent(stage, start, dur))
}

// Event is one recorded span, decoded from the ring.
type Event struct {
	Stage Stage
	// Start is the offset from the tracer's creation; Dur the span
	// length. Both saturate at ~4.5 minutes (28-bit microseconds).
	Start time.Duration
	Dur   time.Duration
}

// Events returns the recorded spans, oldest first, at most RingSize
// (older events are overwritten). Safe to call concurrently with
// recording; a torn read is impossible, though very recent events may
// be missed.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	head := t.head.Load()
	n := head
	if n > RingSize {
		n = RingSize
	}
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		slot := (head - n + i) % RingSize
		raw := t.ring[slot].Load()
		out = append(out, Event{
			Stage: Stage(raw >> 56),
			Start: time.Duration((raw>>28)&microsMask) * time.Microsecond,
			Dur:   time.Duration(raw&microsMask) * time.Microsecond,
		})
	}
	return out
}

// StageStats is the aggregate of one stage in a Breakdown, shaped for
// JSON responses.
type StageStats struct {
	Stage string `json:"stage"`
	// Spans is the number of closed spans of this stage.
	Spans int64 `json:"spans"`
	// Micros is the total duration across those spans.
	Micros int64 `json:"us"`
	// MaxUs is the longest single span of the stage; on fan-out stages
	// (shard) the gap between MaxUs and Micros/Spans is the straggler.
	MaxUs int64 `json:"maxUs,omitempty"`
	// Counters holds the non-zero effort counters of the stage.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Breakdown returns the non-empty stage aggregates in stage order. A
// stage appears when it closed at least one span or bumped at least one
// counter. Nil-safe (returns nil).
func (t *Tracer) Breakdown() []StageStats {
	if t == nil {
		return nil
	}
	var out []StageStats
	for s := Stage(0); s < numStages; s++ {
		agg := &t.stages[s]
		st := StageStats{
			Stage:  s.String(),
			Spans:  agg.spans.Load(),
			Micros: agg.nanos.Load() / int64(time.Microsecond),
			MaxUs:  agg.maxNanos.Load() / int64(time.Microsecond),
		}
		for c := Counter(0); c < numCounters; c++ {
			if v := agg.counters[c].Load(); v != 0 {
				if st.Counters == nil {
					st.Counters = make(map[string]int64)
				}
				st.Counters[c.String()] = v
			}
		}
		if st.Spans != 0 || st.Counters != nil {
			out = append(out, st)
		}
	}
	return out
}

// StageMicros returns the total recorded duration of one stage, in
// microseconds. Nil-safe (0).
func (t *Tracer) StageMicros(s Stage) int64 {
	if t == nil {
		return 0
	}
	return t.stages[s].nanos.Load() / int64(time.Microsecond)
}

// Elapsed returns the time since the tracer was created. Nil-safe (0).
func (t *Tracer) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}
