package trace

import (
	"sync/atomic"
	"time"
)

// Histogram is a lock-free fixed-bucket latency histogram in the
// cumulative-bucket style of Prometheus text exposition: Snapshot
// returns counts of observations <= each upper bound, plus a +Inf
// bucket, a sum, and a count. Observe is safe for concurrent use.
type Histogram struct {
	// bounds are the bucket upper limits in seconds, ascending.
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf overflow
	sum    atomic.Int64   // nanoseconds
}

// DefaultLatencyBuckets spans the request latencies this service sees:
// sub-millisecond warm-cache FO probes up to multi-second coNP searches.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// NewHistogram builds a histogram over the bucket upper bounds (in
// seconds, ascending). Nil bounds selects DefaultLatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	secs := d.Seconds()
	i := 0
	for i < len(h.bounds) && secs > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram, with
// cumulative bucket counts ready for text exposition.
type HistogramSnapshot struct {
	// Bounds are the upper limits in seconds; Cumulative[i] counts
	// observations <= Bounds[i]. Inf counts all observations.
	Bounds     []float64
	Cumulative []int64
	Inf        int64
	// SumSeconds is the total of all observed latencies; Count the
	// number of observations.
	SumSeconds float64
	Count      int64
}

// Quantile estimates the q-quantile (0 < q <= 1) in seconds from the
// bucket counts: the upper bound of the first bucket whose cumulative
// count covers the rank. Observations beyond the last bound report the
// last bound — an underestimate, but a stable one, which is what the
// router's p99-derived hedge delay needs (it clamps the result anyway).
// An empty snapshot reports 0.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count <= 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := int64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	for i, cum := range s.Cumulative {
		if cum >= rank {
			return s.Bounds[i]
		}
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot copies the histogram's current state. Counts are read
// per-bucket without a global lock, so a snapshot taken during
// concurrent Observe calls may be off by in-flight samples but is
// always internally monotone.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds}
	s.Cumulative = make([]int64, len(h.bounds))
	var cum int64
	for i := range h.bounds {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	s.Inf = cum + h.counts[len(h.bounds)].Load()
	s.SumSeconds = time.Duration(h.sum.Load()).Seconds()
	// Count equals the +Inf bucket by construction, which keeps the
	// exposition internally consistent even mid-Observe.
	s.Count = s.Inf
	return s
}
