package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin(StageCoNP)
	sp.End()
	tr.Add(StagePTime, CtrBranches, 7)
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if got := tr.Breakdown(); got != nil {
		t.Fatalf("nil tracer breakdown = %v, want nil", got)
	}
	if got := tr.Events(); got != nil {
		t.Fatalf("nil tracer events = %v, want nil", got)
	}
	if tr.StageMicros(StageCoNP) != 0 || tr.Elapsed() != 0 {
		t.Fatal("nil tracer reports nonzero time")
	}
}

// TestNilTracerZeroAlloc pins the acceptance criterion that disabled
// tracing allocates nothing: the span/counter path on a nil tracer must
// be branch-only.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin(StageEliminator)
		tr.Add(StageEliminator, CtrSteps, 123)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("nil-tracer span+counter path allocates %.1f/op, want 0", allocs)
	}
}

func TestBreakdownAggregates(t *testing.T) {
	tr := New()
	sp := tr.Begin(StageEliminator)
	time.Sleep(time.Millisecond)
	sp.End()
	sp = tr.Begin(StageEliminator)
	sp.End()
	tr.Add(StageEliminator, CtrSteps, 40)
	tr.Add(StageEliminator, CtrSteps, 2)
	tr.Add(StagePTime, CtrDissolutions, 3) // counter-only stage, no span

	bd := tr.Breakdown()
	if len(bd) != 2 {
		t.Fatalf("breakdown has %d stages, want 2: %+v", len(bd), bd)
	}
	elim := bd[0]
	if elim.Stage != "eliminator" || elim.Spans != 2 {
		t.Fatalf("eliminator stage = %+v", elim)
	}
	if elim.Micros < 1000 {
		t.Fatalf("eliminator recorded %dus, want >= 1000", elim.Micros)
	}
	if elim.Counters["steps"] != 42 {
		t.Fatalf("steps counter = %d, want 42", elim.Counters["steps"])
	}
	pt := bd[1]
	if pt.Stage != "ptime" || pt.Spans != 0 || pt.Counters["dissolutions"] != 3 {
		t.Fatalf("ptime stage = %+v", pt)
	}

	// The breakdown must be JSON-encodable for the server response.
	if _, err := json.Marshal(bd); err != nil {
		t.Fatalf("breakdown does not marshal: %v", err)
	}
}

func TestEventsDecodeAndOrder(t *testing.T) {
	tr := New()
	for _, s := range []Stage{StageCompile, StageIndexBuild, StageCoNP} {
		sp := tr.Begin(s)
		sp.End()
	}
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	want := []Stage{StageCompile, StageIndexBuild, StageCoNP}
	for i, ev := range evs {
		if ev.Stage != want[i] {
			t.Fatalf("event %d stage = %v, want %v", i, ev.Stage, want[i])
		}
		if ev.Dur < 0 || ev.Start < 0 {
			t.Fatalf("event %d has negative time: %+v", i, ev)
		}
	}
	if evs[0].Start > evs[2].Start {
		t.Fatalf("events out of order: %+v", evs)
	}
}

func TestEventRingOverwrite(t *testing.T) {
	tr := New()
	for i := 0; i < RingSize+10; i++ {
		sp := tr.Begin(StageMatch)
		sp.End()
	}
	evs := tr.Events()
	if len(evs) != RingSize {
		t.Fatalf("ring returned %d events, want %d", len(evs), RingSize)
	}
	if got := tr.Breakdown()[0].Spans; got != RingSize+10 {
		t.Fatalf("aggregate spans = %d, want %d (ring overwrite must not drop aggregates)",
			got, RingSize+10)
	}
}

func TestEventPackingSaturates(t *testing.T) {
	raw := packEvent(StageCoNP, 10*time.Minute, 10*time.Minute)
	if Stage(raw>>56) != StageCoNP {
		t.Fatal("stage bits corrupted by saturation")
	}
	if (raw>>28)&microsMask != microsMask || raw&microsMask != microsMask {
		t.Fatal("expected saturated start/dur fields")
	}
}

// TestConcurrentRecording hammers one tracer from many goroutines, as
// the answer-pool workers of one request do. Run under -race this also
// proves the ring and aggregates are data-race free.
func TestConcurrentRecording(t *testing.T) {
	tr := New()
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := tr.Begin(StageMatch)
				tr.Add(StageMatch, CtrMatches, 1)
				sp.End()
				// Interleave readers with writers.
				if i%100 == 0 {
					tr.Events()
					tr.Breakdown()
				}
			}
		}()
	}
	wg.Wait()
	bd := tr.Breakdown()
	if len(bd) != 1 {
		t.Fatalf("breakdown = %+v", bd)
	}
	if bd[0].Spans != workers*perWorker {
		t.Fatalf("spans = %d, want %d", bd[0].Spans, workers*perWorker)
	}
	if bd[0].Counters["matches"] != workers*perWorker {
		t.Fatalf("matches = %d, want %d", bd[0].Counters["matches"], workers*perWorker)
	}
	if evs := tr.Events(); len(evs) != RingSize {
		t.Fatalf("events after overflow = %d, want %d", len(evs), RingSize)
	}
}

func TestStageAndCounterNames(t *testing.T) {
	for s := Stage(0); s < numStages; s++ {
		if s.String() == "" || s.String() == "unknown" {
			t.Fatalf("stage %d has no name", s)
		}
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage must stringify as unknown")
	}
	for c := Counter(0); c < numCounters; c++ {
		if c.String() == "" || c.String() == "unknown" {
			t.Fatalf("counter %d has no name", c)
		}
	}
	if Counter(200).String() != "unknown" {
		t.Fatal("out-of-range counter must stringify as unknown")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // <= 1ms
	h.Observe(2 * time.Millisecond)   // <= 10ms
	h.Observe(5 * time.Millisecond)   // <= 10ms
	h.Observe(50 * time.Millisecond)  // <= 100ms
	h.Observe(3 * time.Second)        // +Inf

	s := h.Snapshot()
	wantCum := []int64{1, 3, 4}
	for i, want := range wantCum {
		if s.Cumulative[i] != want {
			t.Fatalf("bucket le=%g cumulative = %d, want %d", s.Bounds[i], s.Cumulative[i], want)
		}
	}
	if s.Inf != 5 || s.Count != 5 {
		t.Fatalf("inf=%d count=%d, want 5/5", s.Inf, s.Count)
	}
	wantSum := (500*time.Microsecond + 7*time.Millisecond + 50*time.Millisecond + 3*time.Second).Seconds()
	if diff := s.SumSeconds - wantSum; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("sum = %v, want %v", s.SumSeconds, wantSum)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	if got := h.Snapshot().Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	for i := 0; i < 98; i++ {
		h.Observe(500 * time.Microsecond) // <= 1ms
	}
	h.Observe(50 * time.Millisecond) // <= 100ms
	h.Observe(3 * time.Second)       // beyond the last bound

	s := h.Snapshot()
	if got := s.Quantile(0.50); got != 0.001 {
		t.Errorf("p50 = %v, want 0.001", got)
	}
	if got := s.Quantile(0.99); got != 0.1 {
		t.Errorf("p99 = %v, want 0.1", got)
	}
	// The overflow bucket has no upper limit: the estimate clamps to the
	// last bound rather than inventing a number.
	if got := s.Quantile(1.0); got != 0.1 {
		t.Errorf("p100 = %v, want the last bound 0.1", got)
	}
	// A tiny q still reports a real bucket (rank floors at 1).
	if got := s.Quantile(0.001); got != 0.001 {
		t.Errorf("p0.1 = %v, want 0.001", got)
	}
	if got := (HistogramSnapshot{Count: 5}).Quantile(0.5); got != 0 {
		t.Errorf("boundless snapshot quantile = %v, want 0", got)
	}
}

func TestHistogramDefaultBucketsAndConcurrency(t *testing.T) {
	h := NewHistogram(nil)
	if len(h.bounds) != len(DefaultLatencyBuckets) {
		t.Fatal("nil bounds must select the default buckets")
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 4000 {
		t.Fatalf("count = %d, want 4000", s.Count)
	}
	var nilH *Histogram
	nilH.Observe(time.Second) // must not panic
}
