// SQL audit: ship the certainty check to a SQL engine.
//
// For FO-classified queries, the consistent first-order rewriting can be
// translated to plain SQL-92 and executed directly on the inconsistent
// tables — no repair machinery at runtime. This example builds the SQL
// for an audit query, runs it with the in-repo miniature SQL evaluator
// (standing in for a real DBMS), and cross-checks the answer against the
// native engine and the exact repair counts.
//
// Run with: go run ./examples/sqlaudit
package main

import (
	"fmt"
	"log"

	"cqa/internal/core"
	"cqa/internal/counting"
	"cqa/internal/db"
	"cqa/internal/query"
	"cqa/internal/rewrite"
	"cqa/internal/sqlmini"
)

func main() {
	// "Is some payment certainly routed through an EU acquirer?"
	q, err := query.Parse("Payment(pay | acq), Acquirer(acq | 'EU')")
	if err != nil {
		log.Fatal(err)
	}
	cls, err := core.Classify(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s   [CERTAINTY: %v]\n\n", q, cls.Class)

	sql, err := rewrite.SQL(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SQL rewriting (columns are c1, c2, ... by position):")
	fmt.Println("  " + sql)

	d, err := db.ParseFacts(q.Schema(), `
		Payment(p1 | adyen)
		Payment(p1 | stripe)
		Payment(p2 | stripe)
		Acquirer(adyen | EU)
		Acquirer(stripe | EU)
		Acquirer(stripe | US)
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuncertain database (%d facts, %.0f repairs):\n", d.Len(), d.NumRepairs())
	for _, f := range d.Facts() {
		fmt.Printf("  %s\n", f)
	}

	// Run the SQL against the inconsistent tables directly.
	viaSQL, err := sqlmini.EvalString(sql, d)
	if err != nil {
		log.Fatal(err)
	}
	// And the native engine.
	res, err := core.Certain(q, d, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncertain via SQL rewriting: %v\n", viaSQL)
	fmt.Printf("certain via native engine: %v\n", res.Certain)
	if viaSQL != res.Certain {
		log.Fatal("engines disagree — this must never happen")
	}

	// How close to certain is it? Exact repair counts.
	cres, err := counting.SatisfyingRepairs(q, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsatisfying repairs: %v of %v (fraction %.2f)\n",
		cres.Satisfying, cres.Total, cres.Fraction)
	// Not certain: the repair {Payment(p1|stripe), Payment(p2|stripe),
	// Acquirer(stripe|US), ...} routes everything through a US acquirer.
	if !res.Certain {
		repair, found, _ := core.FalsifyingRepair(q, d)
		if found {
			fmt.Println("a resolution with no EU-routed payment:")
			for _, f := range repair {
				fmt.Printf("  %s\n", f)
			}
		}
	}
}
