// Round-robin pairing: the polynomial-time dissolution engine at work.
//
// An on-call roster pairs engineers: OnCall(e | b) says e's pager
// escalates to b, and Backup(b | e) says b covers e. Both tables come
// from conflicting spreadsheet imports, so primary keys are violated.
// The safety question — "is there certainly SOME mutually paired couple
// (e escalates to b and b covers e)?" — is the paper's canonical query
// q0 = {R(x | y), S(y | x)}: its attack graph is a weak cycle, so
// CERTAINTY(q0) is in P but NOT first-order expressible, and the solver
// must run the Markov-cycle dissolution of Theorem 4.
//
// Run with: go run ./examples/roundrobin
package main

import (
	"fmt"
	"log"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/ptime"
	"cqa/internal/query"
)

func main() {
	q, err := query.Parse("OnCall(e | b), Backup(b | e)")
	if err != nil {
		log.Fatal(err)
	}
	cls, err := core.Classify(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("CERTAINTY(q) is %v — no first-order rewriting exists (Theorem 2),\n", cls.Class)
	fmt.Printf("but the dissolution algorithm of Theorem 4 decides it in polynomial time.\n\n")

	// The imports disagree on alice's escalation target, on who bob
	// covers, and on who erin covers.
	d, err := db.ParseFacts(q.Schema(), `
		OnCall(alice | bob)
		OnCall(alice | carol)
		OnCall(dana | erin)
		Backup(bob | alice)
		Backup(bob | gus)
		Backup(carol | alice)
		Backup(erin | dana)
		Backup(erin | frank)
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("roster (%d facts, %.0f repairs):\n", d.Len(), d.NumRepairs())
	for _, f := range d.Facts() {
		fmt.Printf("  %s\n", f)
	}

	certain, stats, err := ptime.Certain(q, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncertainly some mutual pair? %v\n", certain)
	fmt.Printf("solver effort: levels=%d dissolutions=%d gpurify=%d\n",
		stats.Levels, stats.Dissolutions, stats.GPurifyRuns)

	// Not certain: resolving alice -> bob, bob -> gus, erin -> frank
	// leaves no mutual pair. Exhibit such a resolution.
	if !certain {
		repair, found, err := core.FalsifyingRepair(q, d)
		if err != nil {
			log.Fatal(err)
		}
		if found {
			fmt.Println("a resolution with no mutual pair:")
			for _, f := range repair {
				fmt.Printf("  %s\n", f)
			}
		}
	}

	// Pin erin to dana (drop the frank row). Now dana <-> erin is mutual
	// in every repair, and the dissolution engine proves certainty.
	d2 := d.Filter(func(f db.Fact) bool { return f.String() != "Backup(erin | frank)" })
	certain2, stats2, err := ptime.Certain(q, d2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter pinning erin -> dana: certain? %v (dissolutions: %d)\n",
		certain2, stats2.Dissolutions)
}
