// Quickstart: parse a query, classify CERTAINTY(q), evaluate it on an
// uncertain database, and inspect the first-order rewriting.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/query"
	"cqa/internal/rewrite"
)

func main() {
	// A query over an inconsistent HR database: "is there an employee
	// whose department is located in Melbourne?" Dept's key is the
	// department name; Emp's key is the employee id.
	q, err := query.Parse("Emp(eid | dept), Dept(dept | 'Melbourne')")
	if err != nil {
		log.Fatal(err)
	}

	// Classify CERTAINTY(q) per the trichotomy (Theorem 1).
	cls, err := core.Classify(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("CERTAINTY(q) is %v\n\n", cls.Class)

	// An uncertain database: two conflicting rows for employee e1's
	// department, and two conflicting rows for the location of Sales.
	d, err := db.ParseFacts(q.Schema(), `
		Emp(e1 | Sales)
		Emp(e1 | Marketing)
		Dept(Sales | Melbourne)
		Dept(Marketing | Melbourne)
		Dept(Marketing | Sydney)
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Is the query true in EVERY repair?
	res, err := core.Certain(q, d, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("certain on db? %v (engine: %s)\n", res.Certain, res.Engine)

	// It is not: the repair that keeps Emp(e1|Marketing) and
	// Dept(Marketing|Sydney) has no Melbourne employee. Exhibit it.
	repair, found, err := core.FalsifyingRepair(q, d)
	if err != nil {
		log.Fatal(err)
	}
	if found {
		fmt.Println("a falsifying repair:")
		for _, f := range repair {
			fmt.Printf("  %s\n", f)
		}
	}

	// Repairing the uncertainty about Marketing's location makes the
	// query certain: both choices for e1 now land in Melbourne.
	d2 := d.Filter(func(f db.Fact) bool {
		return f.String() != "Dept(Marketing | Sydney)"
	})
	res2, err := core.Certain(q, d2, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncertain after dropping Dept(Marketing | Sydney)? %v\n", res2.Certain)

	// Because the attack graph is acyclic, CERTAINTY(q) has a consistent
	// first-order rewriting (Theorem 2) — the query a plain SQL engine
	// could run directly on the inconsistent database.
	f, err := rewrite.Rewriting(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfirst-order rewriting:\n  %s\n", rewrite.Format(f))
}
