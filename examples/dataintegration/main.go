// Data integration: certain answers over conflicting sources.
//
// Two scrapers ingest product data into the same tables and disagree on
// prices and suppliers; the primary keys (product id, supplier id) are
// violated. This example computes the *certain answers* of a non-Boolean
// query — products certainly supplied from a given country — which hold
// no matter how the conflicts are resolved.
//
// Run with: go run ./examples/dataintegration
package main

import (
	"fmt"
	"log"

	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/match"
	"cqa/internal/query"
)

func main() {
	// Product(pid | supplier), Supplier(sid | country).
	// Free variable: pid. The Boolean instantiations are classified FO,
	// so every certain-answer check runs through the rewriting engine.
	q, err := query.Parse("Product(pid | sid), Supplier(sid | 'DE')")
	if err != nil {
		log.Fatal(err)
	}
	cls, err := core.Classify(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s   [CERTAINTY: %v]\n\n", q, cls.Class)

	d, err := db.ParseFacts(q.Schema(), `
		# scraper A
		Product(p1 | acme)
		Product(p2 | globex)
		Product(p3 | acme)
		Supplier(acme | DE)
		Supplier(globex | DE)
		# scraper B disagrees on p2's supplier and globex's country
		Product(p2 | initech)
		Supplier(globex | FR)
		Supplier(initech | US)
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("uncertain database:")
	for _, f := range d.Facts() {
		fmt.Printf("  %s\n", f)
	}
	blocks := 0
	for _, b := range d.Blocks() {
		if len(b.Facts) > 1 {
			blocks++
		}
	}
	fmt.Printf("(%d facts, %d conflicting blocks, %.0f repairs)\n\n",
		d.Len(), blocks, d.NumRepairs())

	answers, err := core.CertainAnswers(q, []query.Var{"pid"}, d, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("products certainly supplied from DE (true in every repair):")
	for _, a := range answers {
		fmt.Printf("  pid = %s\n", a["pid"])
	}
	// p1: acme is consistently German -> certain.
	// p2: might be initech (US) -> not certain.
	// p3: acme again -> certain.

	// Contrast with the "possible" reading: any product with at least one
	// supporting repair. An embedding whose facts are mutually consistent
	// extends to a repair, so plain match enumeration decides possibility.
	fmt.Println("\nproducts possibly supplied from DE (true in some repair):")
	seen := map[string]bool{}
	for _, m := range match.AllMatches(q, d) {
		facts, err := db.GroundQuery(q, m)
		if err != nil || !db.ConsistentSet(facts) {
			continue
		}
		pid := string(m["pid"])
		if !seen[pid] {
			seen[pid] = true
			fmt.Printf("  pid = %s\n", pid)
		}
	}
}
