// Hardness frontier: a coNP-complete query and the exact DPLL engine.
//
// Shift planning with two inconsistently merged tables:
// Assign(task | skill) — each task needs one skill, but the feeds
// disagree; Holds(worker | skill) — each worker certifies one skill,
// with disagreeing records too. The audit question "does certainly some
// task's required skill coincide with some worker's certified skill?"
// is q = {Assign(t | s), Holds(w | s)} — a non-key join. Its attack
// graph is a strong 2-cycle, so by Theorem 3 CERTAINTY(q) is
// coNP-complete: no polynomial algorithm is expected, and the library
// answers it with an exponential-in-the-worst-case falsifying-repair
// search instead of the dissolution engine (which refuses the query).
//
// Run with: go run ./examples/hardness
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"cqa/internal/conp"
	"cqa/internal/core"
	"cqa/internal/db"
	"cqa/internal/ptime"
	"cqa/internal/query"
	"cqa/internal/workload"
)

func main() {
	q, err := query.Parse("Assign(t | s), Holds(w | s)")
	if err != nil {
		log.Fatal(err)
	}
	cls, err := core.Classify(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query: %s\n", q)
	fmt.Printf("CERTAINTY(q) is %v\n", cls.Class)
	fmt.Printf("attack graph:\n%s\n\n", cls.Graph)

	// The polynomial engine must refuse: Theorem 4 does not apply.
	if _, _, err := ptime.Certain(q, db.New()); err != nil {
		fmt.Printf("ptime engine: %v\n\n", err)
	}

	// A small instance, solved exactly.
	d, err := db.ParseFacts(q.Schema(), `
		Assign(deploy | go)
		Assign(deploy | rust)
		Assign(audit  | sql)
		Holds(amy | go)
		Holds(amy | sql)
		Holds(bob | rust)
	`)
	if err != nil {
		log.Fatal(err)
	}
	certain, stats := conp.Certain(q, d)
	fmt.Printf("small instance: certain=%v (blocks=%d, embeddings=%d, decisions=%d)\n",
		certain, stats.Blocks, stats.Matches, stats.Decisions)
	// Certain: whatever skill deploy needs (go or rust), some worker can
	// be resolved to hold it simultaneously? Check the output — if a
	// falsifying resolution exists the engine prints it below.
	if !certain {
		repair, found, _ := core.FalsifyingRepair(q, d)
		if found {
			fmt.Println("falsifying resolution:")
			for _, f := range repair {
				fmt.Printf("  %s\n", f)
			}
		}
	}

	// Scale up on adversarial gadget instances and watch the search
	// effort grow — the practical face of coNP-completeness.
	fmt.Println("\ngadget scaling (decisions of the exact search):")
	rng := rand.New(rand.NewSource(7))
	gadget := workload.NonKeyJoinQuery()
	for _, n := range []int{4, 8, 12, 16} {
		inst := workload.HardInstance(rng, n, 2*n, 2)
		start := time.Now()
		ok, st := conp.Certain(gadget, inst)
		fmt.Printf("  vars=%-3d clauses=%-3d facts=%-4d certain=%-5v decisions=%-8d %v\n",
			n, 2*n, inst.Len(), ok, st.Decisions, time.Since(start).Round(time.Microsecond))
	}
}
