# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race check chaos bench bench-smoke fuzz vet fmt experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Tier-1 gate: build + full tests, vet (plus staticcheck when it is on
# PATH — it is not vendored, so its absence only prints a notice),
# race-enabled tests for the concurrent packages (server, plan cache,
# db store, core worker pool, db index), and a one-iteration smoke run
# of the evaluation benchmarks.
check: build test bench-smoke
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi
	$(GO) test -race ./internal/server ./internal/plancache ./internal/store ./internal/core ./internal/db ./internal/rewrite

# Chaos gate: the fault-injection, cancellation, deadline, budget,
# shedding, and goroutine-leak suites under the race detector. This is
# the robustness counterpart of `check` — everything here exercises the
# degraded paths (injected panics, tripped budgets, saturated admission)
# rather than the happy path.
chaos:
	$(GO) test -race ./internal/faultinject ./internal/evalctx
	$(GO) test -race -run 'Cancel|Deadline|Budget|Leak|FaultInjection|Shedding|Draining|Liveness|Readiness|Degrad' ./internal/core ./internal/server

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of the E-index evaluation benchmarks: verifies the
# compiled-plan and worker-pool paths still run end to end without
# paying for a full timed sweep.
bench-smoke:
	$(GO) test -run='^$$' -bench='CertainAcyclic|CertainAnswersPool' -benchtime=1x .

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/query/
	$(GO) test -fuzz=FuzzParseFact -fuzztime=30s ./internal/db/

vet:
	$(GO) vet ./...
	gofmt -l .

cover:
	$(GO) test -cover ./internal/...

experiments:
	$(GO) run ./cmd/cqa-bench -exp all

clean:
	$(GO) clean ./...
