# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race check bench fuzz vet fmt experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Tier-1 gate: build + full tests, vet, and race-enabled tests for the
# concurrent packages (server, plan cache, db store).
check: build test
	$(GO) vet ./...
	$(GO) test -race ./internal/server ./internal/plancache ./internal/store

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/query/
	$(GO) test -fuzz=FuzzParseFact -fuzztime=30s ./internal/db/

vet:
	$(GO) vet ./...
	gofmt -l .

cover:
	$(GO) test -cover ./internal/...

experiments:
	$(GO) run ./cmd/cqa-bench -exp all

clean:
	$(GO) clean ./...
