# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short race check chaos chaos-net bench bench-smoke fuzz fuzz-smoke cover vet fmt experiments clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Tier-1 gate: build + full tests, vet (plus staticcheck when it is on
# PATH — it is not vendored, so its absence only prints a notice),
# race-enabled tests for the concurrent packages (server, plan cache,
# db store, core worker pool, db index, trace ring), the seeded
# differential fuzz corpus, the coverage floors, and a one-iteration
# smoke run of the evaluation benchmarks plus the BENCH_eval.json
# freshness gate.
check: build test bench-smoke fuzz-smoke cover chaos-net
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi
	$(GO) test -race ./internal/server ./internal/plancache ./internal/store ./internal/core ./internal/db ./internal/rewrite ./internal/trace ./internal/shard ./internal/sym ./internal/colstore ./internal/counting

# Chaos gate: the fault-injection, cancellation, deadline, budget,
# shedding, and goroutine-leak suites under the race detector. This is
# the robustness counterpart of `check` — everything here exercises the
# degraded paths (injected panics, tripped budgets, saturated admission)
# rather than the happy path.
chaos:
	$(GO) test -race ./internal/faultinject ./internal/evalctx
	$(GO) test -race -run 'Cancel|Deadline|Budget|Leak|Fault|Shedding|Draining|Liveness|Readiness|Degrad|Hedge|DeadShard|Unavailable' ./internal/core ./internal/server ./internal/shard ./internal/counting
	$(GO) test -race -run 'Crash|Races|Fallback' ./internal/store

# Network-chaos gate: the remote shard tier under the race detector —
# the simulated-fault transport suites (crashes, one-way partitions,
# stragglers, breaker trips) plus the 520-case differential corpus
# replayed through the router under a rotating kill/slow/partition
# schedule, and the cluster-routed HTTP paths. Part of `check`: a
# router that loses exactness under faults must not ship.
chaos-net:
	$(GO) test -race ./internal/cluster
	$(GO) test -race -run 'Cluster|ShardEval' ./internal/server

bench:
	$(GO) test -bench=. -benchmem ./...

# One iteration of the E-index evaluation benchmarks (verifies the
# compiled-plan and worker-pool paths still run end to end without
# paying for a full timed sweep), then the BENCH_eval.json freshness
# gate: regenerate a quick report and validate both it and the
# checked-in artifact against the current harness shape.
bench-smoke:
	$(GO) test -run='^$$' -bench='CertainAcyclic|CertainAnswersPool' -benchtime=1x .
	$(GO) run ./cmd/cqa-bench -quick -evaljson /tmp/cqa_eval_smoke.json
	$(GO) run ./cmd/cqa-bench -quick -evalcheck /tmp/cqa_eval_smoke.json
	$(GO) run ./cmd/cqa-bench -evalcheck BENCH_eval.json

fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/query/
	$(GO) test -fuzz=FuzzParseFact -fuzztime=30s ./internal/db/
	$(GO) test -fuzz=FuzzDifferential -fuzztime=30s ./internal/difftest/
	$(GO) test -fuzz=FuzzCounting -fuzztime=30s ./internal/difftest/

# Deterministic slice of the fuzz suite: the seeded differential corpora
# (>= 500 generated instances each for the decision engines and the
# repair-counting engine, checked against the brute-force oracle) plus a
# replay of the checked-in fuzz seed corpora. No live fuzzing — this is
# the `check` gate; use `make fuzz` for a real exploration burst.
fuzz-smoke:
	$(GO) test -run 'TestDifferentialSeeded|TestCountingDifferential|FuzzDifferential|FuzzCounting' ./internal/difftest/

vet:
	$(GO) vet ./...
	gofmt -l .

# Coverage with per-package floors on the packages this repo's
# correctness leans on hardest: the trace layer (observability must not
# rot — it is how regressions get diagnosed), the FO rewriting engine,
# the coNP solver, the shard engine (a partitioning bug silently
# corrupts answers, so its tests must not erode), the interned
# columnar storage layers (sym, colstore) the zero-alloc hot path sits
# on, and the mutation path (db structural sharing, store group
# commit + WAL) where an aliasing bug corrupts every derived version,
# and the cluster router (retry/hedge/breaker/partial-failure logic is
# exactly the code that only runs when something is already wrong),
# and the repair-counting engine (an off-by-one in the factorized count
# is invisible to the decision tests). Floors are a few points under
# current coverage so they catch deleted tests, not noise.
cover:
	$(GO) test -cover ./internal/... | tee cover.out
	@status=0; for spec in trace:90 rewrite:70 conp:75 shard:80 sym:90 colstore:90 db:80 store:80 cluster:80 counting:85; do \
		pkg=$${spec%%:*}; floor=$${spec##*:}; \
		pct=$$(awk -v p="cqa/internal/$$pkg" '$$2 == p { for (i=1;i<=NF;i++) if ($$i ~ /%$$/) { sub(/%/,"",$$i); print $$i; exit } }' cover.out); \
		if [ -z "$$pct" ]; then echo "cover: no coverage reported for internal/$$pkg"; status=1; \
		elif awk -v a="$$pct" -v b="$$floor" 'BEGIN{exit !(a<b)}'; then \
			echo "cover: internal/$$pkg at $$pct% is BELOW the $$floor% floor"; status=1; \
		else echo "cover: internal/$$pkg $$pct% (floor $$floor%)"; fi; \
	done; rm -f cover.out; exit $$status

experiments:
	$(GO) run ./cmd/cqa-bench -exp all

clean:
	$(GO) clean ./...
